//! The error-prone selectivity space (ESS) and its discretized grid.
//!
//! The ESS is a D-dimensional box of selectivities, one axis per error-prone
//! predicate (paper, Section 2). Following the paper's plots (log-log axes
//! spanning 0.01%–100%), the grid is *geometrically* spaced along each axis:
//! selectivity errors are multiplicative, so resolution should be relative.

use pb_plan::DimKind;
use serde::{Deserialize, Serialize};

/// One error-prone dimension: a selectivity range `[lo, hi]` typed with the
/// plan-site kind it is bound to ([`DimKind`]).
///
/// `hi` defaults to the maximum legal selectivity — 1.0 for selections, and
/// for PK–FK joins the reciprocal of the PK side's cardinality constraint
/// (paper, Section 4.1). The `kind` is pure metadata as far as the grid is
/// concerned (spacing and coordinates are kind-independent), but workloads
/// validate it against the query's predicates and the engine/estimator use
/// it to pick per-kind observation and estimation paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EssDim {
    pub name: String,
    pub lo: f64,
    pub hi: f64,
    #[serde(default)]
    pub kind: DimKind,
}

impl EssDim {
    /// Untyped constructor, kept for ergonomics: the dimension defaults to
    /// [`DimKind::Selection`]. Workload validation tolerates the default on
    /// any axis (legacy declarations predate the typed model); use the
    /// typed constructors for new workloads.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        Self::typed(name, lo, hi, DimKind::Selection)
    }

    /// Fully-typed constructor.
    pub fn typed(name: impl Into<String>, lo: f64, hi: f64, kind: DimKind) -> Self {
        assert!(
            lo > 0.0 && hi > lo && hi <= 1.0,
            "bad dim range [{lo},{hi}]"
        );
        EssDim {
            name: name.into(),
            lo,
            hi,
            kind,
        }
    }

    /// A base-relation selection-selectivity axis.
    pub fn selection(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        Self::typed(name, lo, hi, DimKind::Selection)
    }

    /// A PK–FK equi-join match-density axis.
    pub fn pk_fk_join(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        Self::typed(name, lo, hi, DimKind::PkFkJoin)
    }

    /// An inequality-join (`<`/`>`) pair-density axis.
    pub fn inequality_join(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        Self::typed(name, lo, hi, DimKind::InequalityJoin)
    }

    /// An anti-join (NOT EXISTS) match-density axis.
    pub fn anti_join(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        Self::typed(name, lo, hi, DimKind::AntiJoin)
    }

    /// A semi-join (EXISTS) match-density axis.
    pub fn semi_join(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        Self::typed(name, lo, hi, DimKind::SemiJoin)
    }

    /// Same dimension with a different kind tag (range untouched).
    #[must_use]
    pub fn with_kind(mut self, kind: DimKind) -> Self {
        self.kind = kind;
        self
    }
}

/// A location in the ESS: one absolute selectivity per dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelPoint(pub Vec<f64>);

impl SelPoint {
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Componentwise `<=` — "self lies in the third quadrant of other"
    /// (the paper's first-quadrant invariant viewed from the other side).
    pub fn dominated_by(&self, other: &SelPoint) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

impl std::ops::Deref for SelPoint {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.0
    }
}

/// Grid coordinates of a point (per-dimension step indices).
pub type GridIx = Vec<usize>;

/// The discretized ESS: a geometric grid with `res[d]` steps per dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ess {
    pub dims: Vec<EssDim>,
    pub res: Vec<usize>,
}

impl Ess {
    pub fn new(dims: Vec<EssDim>, res: Vec<usize>) -> Self {
        assert_eq!(dims.len(), res.len());
        assert!(!dims.is_empty(), "ESS needs at least one dimension");
        // A 1-step axis is a degenerate but legal grid (the single point
        // sits at the dimension's upper bound).
        assert!(
            res.iter().all(|&r| r >= 1),
            "each dimension needs >= 1 step"
        );
        Ess { dims, res }
    }

    /// Same resolution along every axis.
    pub fn uniform(dims: Vec<EssDim>, res: usize) -> Self {
        let n = dims.len();
        Ess::new(dims, vec![res; n])
    }

    pub fn d(&self) -> usize {
        self.dims.len()
    }

    /// Total number of grid points.
    pub fn num_points(&self) -> usize {
        self.res.iter().product()
    }

    /// Selectivity of step `ix` along dimension `d` (geometric spacing).
    pub fn sel_at(&self, d: usize, ix: usize) -> f64 {
        let dim = &self.dims[d];
        let steps = self.res[d] - 1;
        if ix >= steps {
            return dim.hi;
        }
        let t = ix as f64 / steps as f64;
        dim.lo * (dim.hi / dim.lo).powf(t)
    }

    /// The [`SelPoint`] at grid coordinates `ix`.
    pub fn point(&self, ix: &[usize]) -> SelPoint {
        debug_assert_eq!(ix.len(), self.d());
        SelPoint(
            ix.iter()
                .enumerate()
                .map(|(d, &i)| self.sel_at(d, i))
                .collect(),
        )
    }

    /// Allocation-free [`point`](Ess::point) into a scratch buffer; cell
    /// values are exactly those `point` would produce.
    pub fn point_into(&self, ix: &[usize], out: &mut Vec<f64>) {
        debug_assert_eq!(ix.len(), self.d());
        out.clear();
        out.extend(ix.iter().enumerate().map(|(d, &i)| self.sel_at(d, i)));
    }

    /// A point located at the given fraction (0.0 = lo, 1.0 = hi, geometric
    /// interpolation) along each axis — convenient for tests and examples.
    pub fn point_at_fractions(&self, f: &[f64]) -> SelPoint {
        assert_eq!(f.len(), self.d());
        SelPoint(
            self.dims
                .iter()
                .zip(f)
                .map(|(dim, &t)| dim.lo * (dim.hi / dim.lo).powf(t.clamp(0.0, 1.0)))
                .collect(),
        )
    }

    /// Flatten grid coordinates to a linear index (row-major).
    pub fn linear(&self, ix: &[usize]) -> usize {
        let mut li = 0;
        for (d, &i) in ix.iter().enumerate() {
            debug_assert!(i < self.res[d]);
            li = li * self.res[d] + i;
        }
        li
    }

    /// Inverse of [`linear`](Ess::linear).
    pub fn unlinear(&self, li: usize) -> GridIx {
        let mut ix = vec![0; self.d()];
        self.unlinear_into(li, &mut ix);
        ix
    }

    /// Allocation-free [`unlinear`](Ess::unlinear) into a scratch buffer
    /// (resized to the grid dimensionality if needed).
    pub fn unlinear_into(&self, mut li: usize, ix: &mut GridIx) {
        ix.resize(self.d(), 0);
        for d in (0..self.d()).rev() {
            ix[d] = li % self.res[d];
            li /= self.res[d];
        }
    }

    /// All grid points flattened row-major into one buffer of
    /// `num_points() × d()` selectivities. Cell values are exactly those of
    /// `point(&unlinear(li))` — same `sel_at` calls — so costing against
    /// this buffer is bit-identical to costing per-point.
    pub fn points_flat(&self) -> Vec<f64> {
        let d = self.d();
        let mut out = Vec::with_capacity(self.num_points() * d);
        let mut ix = vec![0; d];
        for li in 0..self.num_points() {
            self.unlinear_into(li, &mut ix);
            for (dim, &i) in ix.iter().enumerate() {
                out.push(self.sel_at(dim, i));
            }
        }
        out
    }

    /// Iterate all grid coordinates in row-major order.
    pub fn iter_points(&self) -> impl Iterator<Item = GridIx> + '_ {
        (0..self.num_points()).map(|li| self.unlinear(li))
    }

    /// The grid's origin (all-lo corner) and principal-diagonal corner
    /// (all-hi) — the two optimizations that bootstrap C_min / C_max
    /// (paper, Section 4.2).
    pub fn origin(&self) -> GridIx {
        vec![0; self.d()]
    }

    pub fn terminus(&self) -> GridIx {
        self.res.iter().map(|&r| r - 1).collect()
    }

    /// Snap an arbitrary point to the nearest grid coordinates (geometric
    /// rounding per axis), clamping to the grid range.
    pub fn snap(&self, p: &SelPoint) -> GridIx {
        self.snap_with(p, |t| t.round())
    }

    /// Snap downward: the returned grid point's selectivities never exceed
    /// `p`'s. Used where a conservative (under-)estimate is required, e.g.
    /// looking up the PIC cost at the running location qrun.
    pub fn snap_floor(&self, p: &SelPoint) -> GridIx {
        self.snap_with(p, |t| (t + 1e-9).floor())
    }

    fn snap_with(&self, p: &SelPoint, round: impl Fn(f64) -> f64) -> GridIx {
        (0..self.d())
            .map(|d| {
                let dim = &self.dims[d];
                let steps = (self.res[d] - 1) as f64;
                let s = p[d].clamp(dim.lo, dim.hi);
                let t = (s / dim.lo).ln() / (dim.hi / dim.lo).ln();
                (round(t * steps).max(0.0) as usize).min(self.res[d] - 1)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ess2() -> Ess {
        Ess::uniform(
            vec![EssDim::new("x", 1e-4, 1.0), EssDim::new("y", 1e-2, 1.0)],
            11,
        )
    }

    #[test]
    fn grid_endpoints_hit_bounds() {
        let e = ess2();
        assert!((e.sel_at(0, 0) - 1e-4).abs() < 1e-12);
        assert!((e.sel_at(0, 10) - 1.0).abs() < 1e-12);
        assert!((e.sel_at(1, 0) - 1e-2).abs() < 1e-12);
    }

    #[test]
    fn geometric_spacing() {
        let e = ess2();
        // 1e-4 .. 1.0 over 10 steps: each step multiplies by 10^(4/10).
        let ratio = e.sel_at(0, 5) / e.sel_at(0, 4);
        let expect = 10f64.powf(0.4);
        assert!((ratio - expect).abs() < 1e-9);
    }

    #[test]
    fn linear_unlinear_roundtrip() {
        let e = ess2();
        for li in 0..e.num_points() {
            let ix = e.unlinear(li);
            assert_eq!(e.linear(&ix), li);
        }
    }

    #[test]
    fn iter_covers_all_points_once() {
        let e = ess2();
        let pts: Vec<_> = e.iter_points().collect();
        assert_eq!(pts.len(), 121);
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[120], vec![10, 10]);
    }

    #[test]
    fn dominated_by_is_componentwise() {
        let a = SelPoint(vec![0.1, 0.2]);
        let b = SelPoint(vec![0.1, 0.3]);
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
    }

    #[test]
    fn snap_rounds_to_grid() {
        let e = ess2();
        let p = e.point(&[3, 7]);
        assert_eq!(e.snap(&p), vec![3, 7]);
        // out-of-range clamps
        assert_eq!(e.snap(&SelPoint(vec![1e-9, 5.0])), vec![0, 10]);
    }

    #[test]
    fn snap_floor_never_exceeds_input() {
        let e = ess2();
        for li in 0..e.num_points() {
            let ix = e.unlinear(li);
            let mut p = e.point(&ix);
            // nudge upward slightly: floor must come back to ix
            for v in &mut p.0 {
                *v *= 1.0 + 1e-12;
            }
            assert_eq!(e.snap_floor(&p), ix);
        }
        // a point strictly between steps floors to the lower step
        let mid = SelPoint(vec![
            (e.sel_at(0, 3) * e.sel_at(0, 4)).sqrt(),
            (e.sel_at(1, 7) * e.sel_at(1, 8)).sqrt(),
        ]);
        assert_eq!(e.snap_floor(&mid), vec![3, 7]);
    }

    #[test]
    fn fractions_interpolate_geometrically() {
        let e = ess2();
        let p = e.point_at_fractions(&[0.5, 0.0]);
        assert!((p[0] - 1e-2).abs() < 1e-9); // sqrt(1e-4 * 1.0)
        assert!((p[1] - 1e-2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad dim range")]
    fn zero_lo_rejected() {
        EssDim::new("bad", 0.0, 1.0);
    }
}
