//! Scalar operator cost formulas shared by the tree-walk [`Coster`] and the
//! compiled [`CostProgram`] evaluator.
//!
//! Both costing paths funnel through these functions, so they agree
//! *bit-for-bit* by construction: the same floating-point operations are
//! executed in the same order regardless of whether the inputs were resolved
//! through the catalog on the fly (tree walk) or pre-resolved at compile
//! time (program). Keep every expression textually identical to what the
//! historical `Coster` methods computed — reordering a multiplication here
//! breaks the byte-identity guarantees of the identification pipeline.
//!
//! [`Coster`]: crate::coster::Coster
//! [`CostProgram`]: crate::program::CostProgram

use crate::coster::NodeCost;
use crate::params::CostParams;

/// Sequential scan: `rows`/`pages`/`width` come from the catalog, `sel` is
/// the combined selectivity of the relation's predicates at the ESS point.
pub(crate) fn seq_scan(
    p: &CostParams,
    rows: f64,
    pages: f64,
    width: f64,
    npred: f64,
    sel: f64,
) -> NodeCost {
    let out = rows * sel;
    NodeCost {
        rows: out,
        cost: pages * p.seq_page
            + rows * (p.cpu_tuple + npred * p.cpu_operator)
            + out * p.emit_tuple,
        width,
    }
}

/// Index scan driven by one predicate (`ix_sel`); the remaining predicates
/// combine into `residual`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn index_scan(
    p: &CostParams,
    rows: f64,
    width: f64,
    height: f64,
    leaf_pages: f64,
    nsels: f64,
    ix_sel: f64,
    residual: f64,
) -> NodeCost {
    let matches = rows * ix_sel;
    let out = matches * residual;
    NodeCost {
        rows: out,
        cost: height * p.random_page
            + ix_sel * leaf_pages * p.seq_page
            + matches * (p.cpu_index_tuple + p.random_page * p.heap_fetch_factor)
            + matches * (nsels - 1.0).max(0.0) * p.cpu_operator
            + out * p.emit_tuple,
        width,
    }
}

/// Ordered full scan through an index (random heap fetch per row).
pub(crate) fn full_index_scan(
    p: &CostParams,
    rows: f64,
    width: f64,
    leaf_pages: f64,
    npred: f64,
    sel: f64,
) -> NodeCost {
    let out = rows * sel;
    NodeCost {
        rows: out,
        cost: leaf_pages * p.seq_page
            + rows
                * (p.cpu_index_tuple
                    + p.random_page * p.heap_fetch_factor
                    + npred * p.cpu_operator)
            + out * p.emit_tuple,
        width,
    }
}

/// Cost of sorting `input` (in-memory quicksort, external merge when the
/// input exceeds work_mem).
pub(crate) fn sort_cost(p: &CostParams, input: &NodeCost) -> f64 {
    let n = input.rows.max(2.0);
    let mut cost = n * n.log2() * 2.0 * p.cpu_operator;
    let pages = input.pages(p.page_bytes);
    if pages > p.work_mem_pages {
        let passes = (pages / p.work_mem_pages).log2().max(1.0).ceil();
        cost += 2.0 * pages * p.seq_page * passes;
    }
    cost
}

/// Hybrid hash join; `esel` is the combined selectivity of the join edges.
pub(crate) fn hash_join(
    p: &CostParams,
    build: &NodeCost,
    probe: &NodeCost,
    esel: f64,
    nedges: f64,
) -> NodeCost {
    let rows = build.rows * probe.rows * esel;
    let mut cost = build.cost
        + probe.cost
        + build.rows * (p.cpu_tuple + p.hash_build)
        + probe.rows * p.hash_probe
        + rows * (nedges - 1.0).max(0.0) * p.cpu_operator
        + rows * p.emit_tuple;
    // Grace partitioning when the build side exceeds work_mem: both
    // inputs are written out and re-read once.
    let build_pages = build.pages(p.page_bytes);
    if build_pages > p.work_mem_pages {
        cost += 2.0 * (build_pages + probe.pages(p.page_bytes)) * p.seq_page;
    }
    NodeCost {
        rows,
        cost,
        width: build.width + probe.width,
    }
}

/// Sort-merge join; `sort_left`/`sort_right` indicate explicit sorts.
pub(crate) fn merge_join(
    p: &CostParams,
    left: &NodeCost,
    right: &NodeCost,
    esel: f64,
    nedges: f64,
    sort_left: bool,
    sort_right: bool,
) -> NodeCost {
    let rows = left.rows * right.rows * esel;
    let mut cost = left.cost + right.cost;
    if sort_left {
        cost += sort_cost(p, left);
    }
    if sort_right {
        cost += sort_cost(p, right);
    }
    cost += (left.rows + right.rows) * 2.0 * p.cpu_operator
        + rows * (nedges - 1.0).max(0.0) * p.cpu_operator
        + rows * p.emit_tuple;
    NodeCost {
        rows,
        cost,
        width: left.width + right.width,
    }
}

/// Index nested-loops join. `inner_rows`/`inner_width` are catalog constants
/// of the inner base relation; `npred` counts its residual predicates plus
/// the non-primary join edges.
#[allow(clippy::too_many_arguments)]
pub(crate) fn index_nl_join(
    p: &CostParams,
    outer: &NodeCost,
    inner_rows: f64,
    inner_width: f64,
    primary_sel: f64,
    residual_edges: f64,
    inner_sel: f64,
    npred: f64,
) -> NodeCost {
    let matches = outer.rows * inner_rows * primary_sel;
    let rows = matches * residual_edges * inner_sel;
    let cost = outer.cost
        + outer.rows * p.index_lookup
        + matches * (p.cpu_index_tuple + p.random_page * p.heap_fetch_factor)
        + matches * npred * p.cpu_operator
        + rows * p.emit_tuple;
    NodeCost {
        rows,
        cost,
        width: outer.width + inner_width,
    }
}

/// Block nested-loops join; `nedges_capped` is `edges.len().max(1)`.
pub(crate) fn block_nl_join(
    p: &CostParams,
    outer: &NodeCost,
    inner: &NodeCost,
    esel: f64,
    nedges_capped: f64,
) -> NodeCost {
    let rows = outer.rows * inner.rows * esel;
    let inner_pages = inner.pages(p.page_bytes);
    let chunk_rows = (p.work_mem_pages * p.page_bytes / outer.width.max(1.0)).max(1.0);
    let passes = (outer.rows / chunk_rows).ceil().max(1.0);
    let cost = outer.cost
        + inner.cost
        + inner_pages * p.seq_page // materialize
        + passes * inner_pages * p.seq_page // rescans
        + outer.rows * inner.rows * p.cpu_operator * nedges_capped
        + rows * p.emit_tuple;
    NodeCost {
        rows,
        cost,
        width: outer.width + inner.width,
    }
}

/// Hash anti-join; `s` is the first (lookup) edge's selectivity.
pub(crate) fn anti_join(p: &CostParams, left: &NodeCost, right: &NodeCost, s: f64) -> NodeCost {
    let survive = (1.0 - (s * right.rows).min(0.99)).max(0.01);
    let rows = left.rows * survive;
    let cost = left.cost
        + right.cost
        + right.rows * (p.cpu_tuple + p.hash_build)
        + left.rows * p.hash_probe
        + rows * p.emit_tuple;
    NodeCost {
        rows,
        cost,
        width: left.width,
    }
}

/// Hash semi-join; `s` is the first (lookup) edge's selectivity. The
/// survivor fraction `min(s · |R|, 0.99)` is the expected-match count capped
/// below saturation — the exact mirror of [`anti_join`]'s complement, so the
/// two operators partition the left input (up to the clamps) and the
/// semi-join axis is monotone *increasing* (PCM-clean, no flip needed).
pub(crate) fn semi_join(p: &CostParams, left: &NodeCost, right: &NodeCost, s: f64) -> NodeCost {
    let matched = (s * right.rows).clamp(0.01, 0.99);
    let rows = left.rows * matched;
    let cost = left.cost
        + right.cost
        + right.rows * (p.cpu_tuple + p.hash_build)
        + left.rows * p.hash_probe
        + rows * p.emit_tuple;
    NodeCost {
        rows,
        cost,
        width: left.width,
    }
}

/// Hash aggregation; `ndv_product` and `width` are statistics constants.
pub(crate) fn hash_aggregate(
    p: &CostParams,
    input: &NodeCost,
    ndv_product: f64,
    width: f64,
) -> NodeCost {
    let groups = ndv_product.min(input.rows).max(1.0);
    NodeCost {
        rows: groups,
        cost: input.cost + input.rows * (p.cpu_tuple + p.hash_build) + groups * p.emit_tuple,
        width,
    }
}

/// Spill directive: execute the input, count and discard its output.
pub(crate) fn spill(p: &CostParams, input: &NodeCost) -> NodeCost {
    NodeCost {
        rows: 0.0,
        cost: input.cost + input.rows * p.cpu_tuple,
        width: 0.0,
    }
}
