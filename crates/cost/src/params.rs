//! Cost-model constants and engine personalities.

use serde::{Deserialize, Serialize};

/// Tunable constants of the operator cost formulas, in units of one
/// sequential page read (PostgreSQL convention).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Cost of a sequentially-read page.
    pub seq_page: f64,
    /// Cost of a randomly-read page.
    pub random_page: f64,
    /// CPU cost of processing one tuple.
    pub cpu_tuple: f64,
    /// CPU cost of processing one index entry.
    pub cpu_index_tuple: f64,
    /// CPU cost of one predicate/comparison evaluation.
    pub cpu_operator: f64,
    /// Extra per-tuple CPU for inserting into a hash table.
    pub hash_build: f64,
    /// Extra per-tuple CPU for probing a hash table.
    pub hash_probe: f64,
    /// Memory available to a single operator, in pages (work_mem).
    pub work_mem_pages: f64,
    /// Fraction of heap fetches from an unclustered index that incur a
    /// random page read (the remainder hit cache).
    pub heap_fetch_factor: f64,
    /// Per-lookup overhead of an index probe in a nested-loops join
    /// (descent through cached upper levels plus one leaf access).
    pub index_lookup: f64,
    /// Per-output-tuple emission cost (keeps every plan cost strictly
    /// increasing in every selectivity — PCM).
    pub emit_tuple: f64,
    /// Page size in bytes, for width → pages conversions.
    pub page_bytes: f64,
}

/// A named cost-model personality. The paper evaluates on PostgreSQL and on
/// a commercial engine ("COM"); we model the latter as a second personality
/// with different trade-off constants (cheaper random I/O, pricier CPU,
/// larger memory), which shifts every plan-choice crossover point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    pub name: String,
    pub p: CostParams,
}

impl CostModel {
    /// PostgreSQL-flavour personality (default for all experiments).
    pub fn postgresish() -> Self {
        CostModel {
            name: "postgresish".into(),
            p: CostParams {
                seq_page: 1.0,
                random_page: 4.0,
                cpu_tuple: 0.01,
                cpu_index_tuple: 0.005,
                cpu_operator: 0.0025,
                hash_build: 0.02,
                hash_probe: 0.01,
                work_mem_pages: 2048.0,
                heap_fetch_factor: 0.5,
                index_lookup: 2.0,
                emit_tuple: 0.01,
                page_bytes: 8192.0,
            },
        }
    }

    /// "COM": commercial-engine personality (Section 6.8). SSD-tuned random
    /// I/O, heavier CPU accounting, larger operator memory.
    pub fn commercialish() -> Self {
        CostModel {
            name: "commercialish".into(),
            p: CostParams {
                seq_page: 1.0,
                random_page: 2.0,
                cpu_tuple: 0.02,
                cpu_index_tuple: 0.008,
                cpu_operator: 0.004,
                hash_build: 0.03,
                hash_probe: 0.015,
                work_mem_pages: 8192.0,
                heap_fetch_factor: 0.35,
                index_lookup: 1.2,
                emit_tuple: 0.02,
                page_bytes: 8192.0,
            },
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::postgresish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn personalities_differ() {
        let pg = CostModel::postgresish();
        let com = CostModel::commercialish();
        assert_ne!(pg.name, com.name);
        assert_ne!(pg.p.random_page, com.p.random_page);
    }

    #[test]
    fn default_is_postgresish() {
        assert_eq!(CostModel::default().name, "postgresish");
    }

    #[test]
    fn all_constants_positive() {
        for m in [CostModel::postgresish(), CostModel::commercialish()] {
            let p = &m.p;
            for v in [
                p.seq_page,
                p.random_page,
                p.cpu_tuple,
                p.cpu_index_tuple,
                p.cpu_operator,
                p.hash_build,
                p.hash_probe,
                p.work_mem_pages,
                p.heap_fetch_factor,
                p.index_lookup,
                p.emit_tuple,
                p.page_bytes,
            ] {
                assert!(v > 0.0, "{} has a non-positive constant", m.name);
            }
        }
    }
}
