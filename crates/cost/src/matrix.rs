//! Flat row-major plans × grid-points cost matrix.
//!
//! The identification pipeline previously carried `Vec<Vec<f64>>` — one heap
//! allocation per plan row and a pointer indirection on every cell access.
//! [`CostMatrix`] stores the same data in a single contiguous buffer while
//! keeping the familiar `costs[plan][point]` indexing via `Index<usize>`.
//!
//! Serialization deliberately round-trips through the nested
//! `[[...], [...]]` JSON shape, so persisted bouquet artifacts are
//! byte-identical to those written when the field was a `Vec<Vec<f64>>`.

use serde::{DeError, Value};

/// Plans × points cost matrix in one contiguous row-major buffer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostMatrix {
    points: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// An empty matrix whose future rows will have `points` cells each.
    pub fn new(points: usize) -> Self {
        CostMatrix {
            points,
            data: Vec::new(),
        }
    }

    /// Build from one contiguous row-major buffer.
    pub fn from_flat(points: usize, data: Vec<f64>) -> Self {
        assert!(
            points > 0 && data.len().is_multiple_of(points),
            "flat buffer of {} cells is not a whole number of {points}-cell rows",
            data.len()
        );
        CostMatrix { points, data }
    }

    /// Build from nested rows (all rows must have equal length).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let points = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * points);
        for row in &rows {
            assert_eq!(row.len(), points, "ragged cost matrix rows");
            data.extend_from_slice(row);
        }
        CostMatrix { points, data }
    }

    /// Number of plan rows.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.points).unwrap_or(0)
    }

    /// Number of grid points per row.
    pub fn num_points(&self) -> usize {
        self.points
    }

    /// One plan's cost row.
    pub fn row(&self, plan: usize) -> &[f64] {
        &self.data[plan * self.points..(plan + 1) * self.points]
    }

    /// Iterate plan rows in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.points.max(1))
    }

    /// Append one plan row (used by incremental maintenance).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.data.is_empty() && self.points == 0 {
            self.points = row.len();
        }
        assert_eq!(row.len(), self.points, "ragged cost matrix rows");
        self.data.extend_from_slice(row);
    }

    /// The raw row-major buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// For every grid point, the row index of the cheapest plan; cost ties
    /// break toward the lowest row index, so the result is a pure function
    /// of the matrix contents (the sampled diagram build relies on this to
    /// stay deterministic). Empty matrices yield an empty vector.
    pub fn argmin_per_point(&self) -> Vec<u32> {
        let nrows = self.len();
        if nrows == 0 {
            return Vec::new();
        }
        let mut best: Vec<u32> = vec![0; self.points];
        let mut best_cost: Vec<f64> = self.row(0).to_vec();
        for r in 1..nrows {
            for (li, &c) in self.row(r).iter().enumerate() {
                if c < best_cost[li] {
                    best_cost[li] = c;
                    best[li] = r as u32;
                }
            }
        }
        best
    }
}

impl std::ops::Index<usize> for CostMatrix {
    type Output = [f64];
    fn index(&self, plan: usize) -> &[f64] {
        self.row(plan)
    }
}

impl serde::Serialize for CostMatrix {
    fn to_value(&self) -> Value {
        Value::Arr(
            self.rows()
                .map(|r| Value::Arr(r.iter().map(serde::Serialize::to_value).collect()))
                .collect(),
        )
    }
}

impl serde::Deserialize for CostMatrix {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let rows: Vec<Vec<f64>> = serde::Deserialize::from_value(v)?;
        let points = rows.first().map_or(0, |r| r.len());
        if rows.iter().any(|r| r.len() != points) {
            return Err(DeError::new("cost matrix: ragged rows"));
        }
        Ok(CostMatrix::from_rows(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_matches_nested_layout() {
        let m = CostMatrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.num_points(), 3);
        assert_eq!(m[0][1], 2.0);
        assert_eq!(m[1][2], 6.0);
        assert_eq!(m.rows().count(), 2);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = CostMatrix::new(2);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m[1], [3.0, 4.0]);
    }

    #[test]
    fn argmin_breaks_ties_toward_lowest_row() {
        let m = CostMatrix::from_rows(vec![
            vec![1.0, 5.0, 2.0],
            vec![1.0, 4.0, 2.0], // ties with row 0 at points 0 and 2
            vec![0.5, 9.0, 9.0],
        ]);
        assert_eq!(m.argmin_per_point(), vec![2, 1, 0]);
        assert!(CostMatrix::new(4).argmin_per_point().is_empty());
    }

    #[test]
    fn serde_round_trips_as_nested_arrays() {
        let m = CostMatrix::from_rows(vec![vec![1.5, 2.5], vec![3.5, 4.5]]);
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(json, "[[1.5,2.5],[3.5,4.5]]");
        let back: CostMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        CostMatrix::from_rows(vec![vec![1.0], vec![2.0, 3.0]]);
    }
}
