//! Compile-time selectivity estimation — what the *native optimizer* does.
//!
//! The bouquet never estimates error-prone selectivities; this module exists
//! for the NAT baseline and the engine experiments (Section 6.7), where the
//! optimizer's estimate `qe` is derived from column statistics under the
//! attribute-value-independence (AVI) and uniformity assumptions, and then
//! differs — sometimes catastrophically — from the actual location `qa`.

use pb_catalog::Catalog;
use pb_plan::{CmpOp, JoinPredicate, QuerySpec, SelectionPredicate};

use crate::ess::SelPoint;

/// AVI/uniformity-based selectivity estimator over catalog statistics.
pub struct Estimator<'a> {
    pub catalog: &'a Catalog,
}

impl<'a> Estimator<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        Estimator { catalog }
    }

    /// Estimate a selection predicate's selectivity from column statistics.
    pub fn selection(&self, pred: &SelectionPredicate) -> f64 {
        let t = self.catalog.table_by_id(pred.column.table);
        let stats = &t.columns[pred.column.column as usize].stats;
        match pred.op {
            CmpOp::Eq => stats.eq_selectivity(),
            CmpOp::Lt => stats.lt_selectivity(pred.constant),
            CmpOp::Gt => 1.0 - stats.lt_selectivity(pred.constant),
            CmpOp::Between => stats.range_selectivity(pred.constant2, pred.constant),
        }
        .clamp(1e-9, 1.0)
    }

    /// Estimate a join predicate's selectivity, per edge kind:
    ///
    /// * equality (also anti/semi membership tests): Selinger's
    ///   `1 / max(NDV(left), NDV(right))` match density;
    /// * inequality (`<` / `>`): the left column's distribution integrated
    ///   against the right column's CDF
    ///   ([`ColumnStats::lt_join_selectivity`]), i.e. `P(l op r)` per row
    ///   pair under whatever the histograms believe — the error-prone part.
    ///
    /// [`ColumnStats::lt_join_selectivity`]: pb_catalog::ColumnStats::lt_join_selectivity
    pub fn join(&self, pred: &JoinPredicate) -> f64 {
        let stats = |c: pb_catalog::ColumnId| {
            let t = self.catalog.table_by_id(c.table);
            &t.columns[c.column as usize].stats
        };
        match pred.op {
            CmpOp::Lt => stats(pred.left_col)
                .lt_join_selectivity(stats(pred.right_col))
                .clamp(1e-12, 1.0),
            CmpOp::Gt => stats(pred.left_col)
                .gt_join_selectivity(stats(pred.right_col))
                .clamp(1e-12, 1.0),
            // Equality and the existential membership tests built on it.
            CmpOp::Eq | CmpOp::Between => {
                let ndv = |c: pb_catalog::ColumnId| stats(c).ndv.max(1.0);
                (1.0 / ndv(pred.left_col).max(ndv(pred.right_col))).clamp(1e-12, 1.0)
            }
        }
    }

    /// The native optimizer's estimated ESS location `qe` for a query:
    /// per-dimension AVI estimates mapped into axis coordinates (identity
    /// except for flipped axes, where the estimate lands at `pivot / s`),
    /// clamped into the given bounds.
    pub fn estimate_point(&self, query: &QuerySpec, lo: &[f64], hi: &[f64]) -> SelPoint {
        let mut q = vec![f64::NAN; query.num_dims];
        for r in &query.relations {
            for s in &r.selections {
                if let Some(d) = s.selectivity.error_dim() {
                    q[d] = s.selectivity.to_coordinate(self.selection(s));
                }
            }
        }
        for j in &query.joins {
            if let Some(d) = j.selectivity.error_dim() {
                q[d] = j.selectivity.to_coordinate(self.join(j));
            }
        }
        for (d, v) in q.iter_mut().enumerate() {
            assert!(!v.is_nan(), "dimension {d} not referenced by any predicate");
            *v = v.clamp(lo[d], hi[d]);
        }
        SelPoint(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_plan::{QueryBuilder, SelSpec};

    #[test]
    fn selection_estimates_follow_stats() {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "t");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        let q = qb.build();
        let est = Estimator::new(&cat);

        // p_retailprice range is [900, 2099]; `< 1000` ≈ 100/1199.
        let s = est.selection(&q.relations[0].selections[0]);
        assert!((s - 100.0 / 1199.0).abs() < 1e-6);

        // join ndv = 200_000 partkeys on both sides.
        let j = est.join(&q.joins[0]);
        assert!((j - 1.0 / 200_000.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_point_fills_every_dim_and_clamps() {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "t");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        let q = qb.build();
        let est = Estimator::new(&cat);
        let qe = est.estimate_point(&q, &[0.2, 1e-9], &[1.0, 1.0]);
        assert_eq!(qe.dims(), 2);
        assert_eq!(qe[0], 0.2); // clamped up to lo
        assert!(qe[1] > 0.0 && qe[1] < 1e-4);
    }

    #[test]
    fn gt_and_between_ops() {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "t");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.select(p, "p_size", CmpOp::Gt, 25.0, SelSpec::Fixed(0.5));
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(0));
        let q = qb.build();
        let est = Estimator::new(&cat);
        let s = est.selection(&q.relations[0].selections[0]);
        assert!(s > 0.4 && s < 0.6);
    }
}
