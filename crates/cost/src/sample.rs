//! Deterministic sampling primitives for sampled (probably-approximately-
//! optimal) identification.
//!
//! The sampled diagram build replaces the exhaustive ESS sweep with seeded
//! random probes, so its entire randomness budget flows through one tiny,
//! stable generator defined here. Nothing in this module consults global
//! state: the same seed always yields the same index sequence, on every
//! platform and at every worker count — the property that lets a sampled
//! build be replayed bit-for-bit in CI.

use std::collections::HashMap;

/// SplitMix64 (Steele et al., "Fast splittable pseudorandom number
/// generators"): a 64-bit mixer with a 2^64 period, chosen because its
/// output is a pure function of `seed + k·golden_gamma` — trivially stable
/// across compilers and architectures.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` via the 128-bit multiply reduction (Lemire).
    /// The residual bias is below 2⁻⁶⁴ · n — immaterial for grid sampling —
    /// and, unlike rejection sampling, the draw count per index is fixed,
    /// which keeps sample streams aligned across configurations.
    pub fn next_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }
}

/// `k` distinct indices drawn uniformly from `0..n`, returned in ascending
/// order. Implemented as a sparse partial Fisher–Yates shuffle so the cost
/// is O(k) regardless of `n` (ESS grids reach 10⁵+ points; materializing
/// and shuffling the full index range would dwarf the sampling win).
pub fn sample_distinct(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let k = k.min(n);
    let mut rng = SplitMix64::new(seed);
    // swaps[i] holds the value virtually stored at slot i (absent ⇒ i).
    let mut swaps: HashMap<usize, usize> = HashMap::with_capacity(2 * k);
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let j = i + rng.next_index(n - i);
        let vi = swaps.get(&i).copied().unwrap_or(i);
        let vj = swaps.get(&j).copied().unwrap_or(j);
        out.push(vj);
        swaps.insert(j, vi);
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Known-answer check pins the exact stream (seed 1234567).
        let mut c = SplitMix64::new(1_234_567);
        let first = c.next_u64();
        let mut d = SplitMix64::new(1_234_567);
        assert_eq!(first, d.next_u64());
        assert_ne!(first, d.next_u64());
    }

    #[test]
    fn next_index_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for n in [1usize, 2, 3, 17, 1000] {
            for _ in 0..200 {
                assert!(rng.next_index(n) < n);
            }
        }
    }

    #[test]
    fn sample_distinct_is_distinct_sorted_and_deterministic() {
        for (n, k) in [(100usize, 10usize), (50, 50), (1000, 1), (8, 20)] {
            let s1 = sample_distinct(n, k, 99);
            let s2 = sample_distinct(n, k, 99);
            assert_eq!(s1, s2, "same seed must reproduce");
            assert_eq!(s1.len(), k.min(n));
            assert!(s1.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            assert!(s1.iter().all(|&i| i < n));
        }
        // Different seeds give different samples (overwhelmingly likely).
        assert_ne!(sample_distinct(1000, 20, 1), sample_distinct(1000, 20, 2));
    }

    #[test]
    fn sample_distinct_full_range_is_identity() {
        let mut s = sample_distinct(10, 10, 3);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn next_index_covers_small_ranges() {
        // Every residue of a small range appears within a few hundred draws.
        let mut rng = SplitMix64::new(5);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.next_index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
