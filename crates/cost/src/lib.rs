//! Cost models with first-class selectivity injection.
//!
//! The plan-bouquet technique consumes the database engine through exactly
//! two costing interfaces (paper, Section 5.4):
//!
//! 1. **Selectivity injection** — optimize / cost a query with *chosen*
//!    values for the error-prone selectivities instead of estimated ones.
//!    Here every error-prone predicate carries a dimension id and the
//!    [`SelPoint`] supplies its value, so injection is the default mode of
//!    operation rather than a patch.
//! 2. **Abstract plan costing** — re-cost a fixed plan tree at an arbitrary
//!    location of the error-prone selectivity space ([`Coster::cost`]).
//!
//! The operator cost formulas are deliberately textbook (a PostgreSQL-flavour
//! personality and a "commercial" personality with different constants). What
//! matters for the reproduction is not the constants but the structural
//! properties the paper relies on:
//!
//! * **Plan Cost Monotonicity (PCM)**: every operator cost is monotone
//!   non-decreasing in every input cardinality, hence plan costs are monotone
//!   in every ESS dimension (property-tested here and in `pb-optimizer`).
//! * **Plan diversity**: different regions of the selectivity space favour
//!   different operators (index nested-loops at low selectivity, hash joins
//!   at high), which is what gives the POSP its multi-plan structure.

pub mod coster;
pub mod ess;
pub mod estimator;
mod formulas;
pub mod matrix;
pub mod model_error;
pub mod parallel;
pub mod params;
pub mod program;
pub mod sample;
pub mod uncertainty;

pub use coster::{Coster, NodeCost};
pub use ess::{Ess, EssDim, GridIx, SelPoint};
pub use estimator::Estimator;
pub use matrix::CostMatrix;
pub use model_error::CostPerturbation;
pub use parallel::{
    par_map, run_chunked, set_default_workers, Parallelism, PARALLEL_MIN_CONTOUR_CELLS,
    PARALLEL_MIN_GRID, PARALLEL_MIN_MATRIX_CELLS, PARALLEL_MIN_MORSEL_ROWS,
};
pub use params::{CostModel, CostParams};
pub use pb_plan::DimKind;
pub use program::CostProgram;
pub use sample::{sample_distinct, SplitMix64};
