//! Worker-pool configuration and deterministic chunked work-stealing for
//! the identification pipeline.
//!
//! Every parallel phase in the pipeline (plan-diagram construction, the
//! POSP cost matrix, per-contour frontier scans) fans work out over linear
//! indices with [`run_chunked`]: workers claim fixed-size chunks from a
//! shared atomic cursor, and the per-chunk results are reassembled in chunk
//! order. Because chunk boundaries depend only on the item count — never on
//! worker count or scheduling — merged output is identical for any worker
//! count, which is what lets the parallel pipeline promise byte-identical
//! artefacts to the sequential one.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker-count override (0 = unset), set once at startup by the
/// `--jobs` CLI flag and read by [`Parallelism::auto`].
static DEFAULT_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Override the worker count [`Parallelism::auto`] hands out. `0` restores
/// the hardware default. Intended for `--jobs N` style CLI flags.
pub fn set_default_workers(n: usize) {
    DEFAULT_WORKERS.store(n, Ordering::Relaxed);
}

/// Worker-count policy for the identification pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Number of worker threads to use (>= 1). `1` means run inline on the
    /// calling thread.
    pub workers: usize,
}

impl Parallelism {
    /// The default policy: the `--jobs` override if set, else all available
    /// cores.
    pub fn auto() -> Self {
        let override_n = DEFAULT_WORKERS.load(Ordering::Relaxed);
        if override_n > 0 {
            return Parallelism {
                workers: override_n,
            };
        }
        let cores = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        Parallelism { workers: cores }
    }

    /// Exactly one worker: the sequential reference path.
    pub fn serial() -> Self {
        Parallelism { workers: 1 }
    }

    /// A fixed worker count (clamped to >= 1).
    pub fn new(workers: usize) -> Self {
        Parallelism {
            workers: workers.max(1),
        }
    }

    /// Workers capped to the amount of work actually available.
    pub fn for_items(&self, n_items: usize) -> usize {
        self.workers.min(n_items.max(1))
    }

    /// Demote to serial for small grids, where thread spawn and chunk
    /// hand-off cost more than the work saves (BENCH_identify.json: the
    /// 4-worker diagram build ran 0.0117s vs 0.0092s serial, and the cost
    /// matrix 0.0010s vs 0.0009s, on a 2304-point 2D grid). The output is
    /// unchanged either way — chunked merges are deterministic — so this
    /// only moves the crossover point.
    pub fn for_grid(&self, n_points: usize) -> Parallelism {
        if n_points < PARALLEL_MIN_GRID {
            Parallelism::serial()
        } else {
            *self
        }
    }

    /// Demote to serial for small engine inputs, the morsel-dispatch
    /// analogue of [`Parallelism::for_grid`]: below the threshold the
    /// per-wave thread fan-out costs more than the batch kernels save
    /// (SF 0.01 TPC-H tops out at 60k-row relations, well under it; SF 0.1
    /// clears it on the big relations). Engine outcomes are identical
    /// either way — the coordinator replays the same ledger event sequence
    /// — so this only moves the crossover point.
    pub fn for_morsels(&self, n_rows: usize) -> Parallelism {
        if n_rows < PARALLEL_MIN_MORSEL_ROWS {
            Parallelism::serial()
        } else {
            *self
        }
    }

    /// Generic per-phase gate: demote to serial when the phase's measured
    /// work volume (in whatever unit the phase counts — grid points, matrix
    /// cells, contour-scan cells) is below its crossover threshold. Each
    /// identification phase has a different per-item cost, so each gets its
    /// own threshold instead of sharing one grid-size cutoff; output is
    /// unchanged either way (chunked merges are deterministic).
    pub fn for_cells(&self, cells: usize, min_cells: usize) -> Parallelism {
        if cells < min_cells {
            Parallelism::serial()
        } else {
            *self
        }
    }
}

/// Grid sizes below this run serially even when workers are available:
/// between the 2304-point 2D grids (measurably slower in parallel) and the
/// 8000-point 3D grids (where parallelism wins).
pub const PARALLEL_MIN_GRID: usize = 4096;

/// Engine phases over fewer rows than this run serially even when workers
/// are available: above the 60k-row relations of the SF 0.01 smoke suite,
/// below the 600k-row lineitem of SF 0.1 where morsel fan-out wins.
pub const PARALLEL_MIN_MORSEL_ROWS: usize = 131_072;

/// Cost-matrix builds with fewer plan×point cells than this run serially.
/// A cell is one compiled-program evaluation (~100ns), so the threshold
/// marks roughly the point where the phase outlasts thread spawn + chunk
/// hand-off. The 2304-point 2D TPC-H grid (~17 plans ≈ 39k cells, where the
/// 4-worker matrix ran 1.06ms vs 0.53ms serial per BENCH_identify.json)
/// stays serial; 3D grids at 8000 points × ~20 plans clear it.
pub const PARALLEL_MIN_MATRIX_CELLS: usize = 1 << 16;

/// Contour phases (frontier scans + anorexic reduction) with fewer
/// step×point scan cells than this run serially. A scan cell is one
/// dominance probe (a few ns — far cheaper than a matrix cell), so the
/// crossover sits higher: ~12 steps × 2304 points ≈ 28k cells on the 2D
/// grid (slower parallel), while 5D grids at 10⁵+ points clear it.
pub const PARALLEL_MIN_CONTOUR_CELLS: usize = 1 << 18;

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// Chunk size used by [`run_chunked`]: large enough to amortize the atomic
/// claim, small enough that stealing balances skewed per-item cost.
fn chunk_size(n_items: usize, workers: usize) -> usize {
    // Aim for ~8 chunks per worker so fast workers can steal from slow ones.
    (n_items / (workers * 8)).clamp(1, 4096)
}

/// Run `work(chunk_index, lo..hi)` over `0..n_items` with chunked
/// work-stealing, returning per-chunk results **in chunk order** (i.e.
/// ascending item order), independent of how chunks were claimed.
///
/// `work` must be a pure function of the item range; workers get no
/// identity, so output cannot depend on thread assignment. With one worker
/// (or trivially little work) everything runs inline on the caller.
pub fn run_chunked<T, F>(par: Parallelism, n_items: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    if n_items == 0 {
        return Vec::new();
    }
    let workers = par.for_items(n_items);
    let chunk = chunk_size(n_items, workers);
    let n_chunks = n_items.div_ceil(chunk);

    if workers <= 1 || n_chunks == 1 {
        return (0..n_chunks)
            .map(|c| work(c, c * chunk..((c + 1) * chunk).min(n_items)))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
    let slots_ptr = SlotWriter {
        slots: slots.as_mut_ptr(),
        len: n_chunks,
    };

    std::thread::scope(|s| {
        for _ in 0..workers {
            let cursor = &cursor;
            let work = &work;
            let slots_ptr = &slots_ptr;
            s.spawn(move || loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(n_items);
                let result = work(c, lo..hi);
                // SAFETY: each chunk index is claimed by exactly one worker
                // (fetch_add), so no two threads write the same slot, and
                // the scope joins all workers before `slots` is read.
                unsafe { slots_ptr.write(c, result) };
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every chunk claimed exactly once"))
        .collect()
}

/// Shared mutable access to the result slots. Soundness argument lives at
/// the single `write` call site.
struct SlotWriter<T> {
    slots: *mut Option<T>,
    len: usize,
}

unsafe impl<T: Send> Sync for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    /// # Safety
    /// `i < len` and no other thread writes slot `i`.
    unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        unsafe { *self.slots.add(i) = Some(value) };
    }
}

/// Map `f` over `0..n_items`, returning results in item order. Convenience
/// wrapper over [`run_chunked`] for per-item outputs.
pub fn par_map<T, F>(par: Parallelism, n_items: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let chunks = run_chunked(par, n_items, |_, range| range.map(&f).collect::<Vec<T>>());
    let mut out = Vec::with_capacity(n_items);
    for c in chunks {
        out.extend(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_order_is_deterministic_across_worker_counts() {
        let n = 1000;
        let serial = par_map(Parallelism::serial(), n, |i| i * 3);
        for workers in [2, 3, 4, 7] {
            let par = par_map(Parallelism::new(workers), n, |i| i * 3);
            assert_eq!(serial, par, "worker count {workers} changed output");
        }
    }

    #[test]
    fn run_chunked_covers_every_item_once() {
        let n = 777;
        let chunks = run_chunked(Parallelism::new(4), n, |_, r| r.collect::<Vec<_>>());
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn for_grid_demotes_small_grids_to_serial() {
        let par = Parallelism::new(4);
        assert_eq!(par.for_grid(PARALLEL_MIN_GRID - 1), Parallelism::serial());
        assert_eq!(par.for_grid(PARALLEL_MIN_GRID), par);
        assert_eq!(
            Parallelism::serial().for_grid(1 << 20),
            Parallelism::serial()
        );
    }

    #[test]
    fn for_morsels_demotes_small_inputs_to_serial() {
        let par = Parallelism::new(8);
        assert_eq!(
            par.for_morsels(PARALLEL_MIN_MORSEL_ROWS - 1),
            Parallelism::serial()
        );
        assert_eq!(par.for_morsels(PARALLEL_MIN_MORSEL_ROWS), par);
        // SF 0.01 lineitem (60k rows) must stay serial; SF 0.1 must not.
        assert_eq!(par.for_morsels(60_000), Parallelism::serial());
        assert_eq!(par.for_morsels(600_000), par);
    }

    #[test]
    fn for_cells_gates_on_phase_work_volume() {
        let par = Parallelism::new(4);
        assert_eq!(
            par.for_cells(PARALLEL_MIN_MATRIX_CELLS - 1, PARALLEL_MIN_MATRIX_CELLS),
            Parallelism::serial()
        );
        assert_eq!(
            par.for_cells(PARALLEL_MIN_MATRIX_CELLS, PARALLEL_MIN_MATRIX_CELLS),
            par
        );
        // The 2D regression case: 17 plans × 2304 points stays serial, and
        // 12 contour steps × 2304 points stays serial, while 3D-scale work
        // volumes engage the workers.
        assert_eq!(
            par.for_cells(17 * 2304, PARALLEL_MIN_MATRIX_CELLS),
            Parallelism::serial()
        );
        assert_eq!(par.for_cells(20 * 8000, PARALLEL_MIN_MATRIX_CELLS), par);
        assert_eq!(
            par.for_cells(12 * 2304, PARALLEL_MIN_CONTOUR_CELLS),
            Parallelism::serial()
        );
        assert_eq!(par.for_cells(5 * 100_000, PARALLEL_MIN_CONTOUR_CELLS), par);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(par_map(Parallelism::new(8), 0, |i| i).is_empty());
        assert_eq!(par_map(Parallelism::new(8), 1, |i| i), vec![0]);
    }

    #[test]
    fn for_items_caps_workers() {
        assert_eq!(Parallelism::new(16).for_items(3), 3);
        assert_eq!(Parallelism::new(2).for_items(100), 2);
        assert_eq!(Parallelism::new(5).for_items(0), 1);
    }
}
