//! Operator cost formulas and abstract plan costing.
//!
//! One `Coster` instance binds a catalog, a query and a cost-model
//! personality. Its per-operator methods are used incrementally by the
//! dynamic-programming optimizer, and [`Coster::cost`] walks a complete plan
//! tree to re-cost it at an arbitrary ESS location — the paper's "abstract
//! plan costing" requirement. Both paths share the same formulas, so the
//! optimizer and the bouquet runtime can never disagree about a plan's cost.
//!
//! The scalar arithmetic itself lives in [`crate::formulas`] and is shared
//! with the compiled-program evaluator ([`crate::program::CostProgram`]), so
//! tree-walk and compiled costing are bit-for-bit identical by construction.

use pb_catalog::{Catalog, Table};
use pb_plan::{PlanNode, QuerySpec, RelIdx, SelectionPredicate};

use crate::formulas;
use crate::params::CostModel;

/// Cost estimate for a (sub)plan: output cardinality, cumulative cost and
/// output tuple width in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCost {
    pub rows: f64,
    pub cost: f64,
    pub width: f64,
}

impl NodeCost {
    /// Pages needed to materialize this output.
    pub(crate) fn pages(&self, page_bytes: f64) -> f64 {
        (self.rows * self.width / page_bytes).max(1.0)
    }
}

/// Binds catalog + query + cost model; all methods take the ESS location `q`
/// (absolute selectivity per error-prone dimension) explicitly.
#[derive(Clone, Copy)]
pub struct Coster<'a> {
    pub catalog: &'a Catalog,
    pub query: &'a QuerySpec,
    pub model: &'a CostModel,
}

impl<'a> Coster<'a> {
    pub fn new(catalog: &'a Catalog, query: &'a QuerySpec, model: &'a CostModel) -> Self {
        Coster {
            catalog,
            query,
            model,
        }
    }

    fn table(&self, rel: RelIdx) -> &Table {
        self.catalog.table_by_id(self.query.relations[rel].table)
    }

    /// Selectivity of one selection predicate at location `q`.
    pub fn pred_sel(&self, pred: &SelectionPredicate, q: &[f64]) -> f64 {
        pred.selectivity.resolve(q).clamp(0.0, 1.0)
    }

    /// Combined selectivity of all of `rel`'s selection predicates.
    pub fn rel_sel(&self, rel: RelIdx, q: &[f64]) -> f64 {
        self.query.relations[rel]
            .selections
            .iter()
            .map(|s| self.pred_sel(s, q))
            .product()
    }

    /// Combined selectivity of a set of join edges.
    pub fn edges_sel(&self, edges: &[usize], q: &[f64]) -> f64 {
        edges
            .iter()
            .map(|&e| self.query.joins[e].selectivity.resolve(q).clamp(0.0, 1.0))
            .product()
    }

    /// Sequential scan of `rel` with all selections applied on the fly.
    pub fn seq_scan(&self, rel: RelIdx, q: &[f64]) -> NodeCost {
        let t = self.table(rel);
        let npred = self.query.relations[rel].selections.len() as f64;
        formulas::seq_scan(
            &self.model.p,
            t.rows,
            t.pages(),
            t.row_width as f64,
            npred,
            self.rel_sel(rel, q),
        )
    }

    /// Index scan of `rel` driven by selection `sel_idx`; remaining
    /// selections are residual filters on the fetched tuples.
    pub fn index_scan(&self, rel: RelIdx, sel_idx: usize, q: &[f64]) -> NodeCost {
        let t = self.table(rel);
        let r = &self.query.relations[rel];
        let ix_sel = self.pred_sel(&r.selections[sel_idx], q);
        let residual: f64 = r
            .selections
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != sel_idx)
            .map(|(_, s)| self.pred_sel(s, q))
            .product();
        let height = t
            .index_on(r.selections[sel_idx].column)
            .map_or(2.0, |ix| ix.height as f64);
        let leaf_pages = (t.rows / 256.0).max(1.0);
        formulas::index_scan(
            &self.model.p,
            t.rows,
            t.row_width as f64,
            height,
            leaf_pages,
            r.selections.len() as f64,
            ix_sel,
            residual,
        )
    }

    /// Full scan through the index on `column` — delivers tuples ordered on
    /// that column at the price of random heap fetches for every row.
    pub fn full_index_scan(&self, rel: RelIdx, q: &[f64]) -> NodeCost {
        let t = self.table(rel);
        let npred = self.query.relations[rel].selections.len() as f64;
        let leaf_pages = (t.rows / 256.0).max(1.0);
        formulas::full_index_scan(
            &self.model.p,
            t.rows,
            t.row_width as f64,
            leaf_pages,
            npred,
            self.rel_sel(rel, q),
        )
    }

    /// Cost of sorting `input` (in-memory quicksort, external merge when the
    /// input exceeds work_mem).
    pub fn sort_cost(&self, input: &NodeCost) -> f64 {
        formulas::sort_cost(&self.model.p, input)
    }

    /// Output cardinality of a join applying `edges`.
    pub fn join_rows(&self, left: &NodeCost, right: &NodeCost, edges: &[usize], q: &[f64]) -> f64 {
        left.rows * right.rows * self.edges_sel(edges, q)
    }

    /// Hybrid hash join: `build` is hashed, `probe` streams past it.
    pub fn hash_join(
        &self,
        build: &NodeCost,
        probe: &NodeCost,
        edges: &[usize],
        q: &[f64],
    ) -> NodeCost {
        formulas::hash_join(
            &self.model.p,
            build,
            probe,
            self.edges_sel(edges, q),
            edges.len() as f64,
        )
    }

    /// Sort-merge join; `sort_left`/`sort_right` indicate explicit sorts.
    pub fn merge_join(
        &self,
        left: &NodeCost,
        right: &NodeCost,
        edges: &[usize],
        q: &[f64],
        sort_left: bool,
        sort_right: bool,
    ) -> NodeCost {
        formulas::merge_join(
            &self.model.p,
            left,
            right,
            self.edges_sel(edges, q),
            edges.len() as f64,
            sort_left,
            sort_right,
        )
    }

    /// Index nested-loops join: one index probe into `inner_rel` per outer
    /// tuple. The first edge is the lookup key; the inner relation's own
    /// selections are residual filters on every fetched match.
    pub fn index_nl_join(
        &self,
        outer: &NodeCost,
        inner_rel: RelIdx,
        edges: &[usize],
        q: &[f64],
    ) -> NodeCost {
        let t = self.table(inner_rel);
        let npred = self.query.relations[inner_rel].selections.len() as f64
            + (edges.len() as f64 - 1.0).max(0.0);
        formulas::index_nl_join(
            &self.model.p,
            outer,
            t.rows,
            t.row_width as f64,
            self.edges_sel(&edges[..1], q),
            self.edges_sel(&edges[1..], q),
            self.rel_sel(inner_rel, q),
            npred,
        )
    }

    /// Block nested-loops join with a materialized inner.
    pub fn block_nl_join(
        &self,
        outer: &NodeCost,
        inner: &NodeCost,
        edges: &[usize],
        q: &[f64],
    ) -> NodeCost {
        formulas::block_nl_join(
            &self.model.p,
            outer,
            inner,
            self.edges_sel(edges, q),
            edges.len().max(1) as f64,
        )
    }

    /// Hash anti-join (NOT EXISTS): build a key set from `right`, stream
    /// `left` past it, keep the non-matching rows. With match density `s`
    /// (the edge parameter), a left row survives with probability
    /// `1 − min(s·|R|, 0.99)`; the 1% floor keeps the cost strictly
    /// monotone and the output non-degenerate. Note the *decreasing*
    /// dependence on `s` — this operator deliberately violates PCM.
    pub fn anti_join(
        &self,
        left: &NodeCost,
        right: &NodeCost,
        edges: &[usize],
        q: &[f64],
    ) -> NodeCost {
        formulas::anti_join(&self.model.p, left, right, self.edges_sel(&edges[..1], q))
    }

    /// Hash semi-join (EXISTS): build a key set from `right`, stream `left`
    /// past it, keep the matching rows. With match density `s` (the edge
    /// parameter), a left row survives with probability `min(s·|R|, 0.99)`
    /// (1% floor) — the complement of [`Coster::anti_join`], monotone
    /// *increasing* in `s` and therefore PCM-clean.
    pub fn semi_join(
        &self,
        left: &NodeCost,
        right: &NodeCost,
        edges: &[usize],
        q: &[f64],
    ) -> NodeCost {
        formulas::semi_join(&self.model.p, left, right, self.edges_sel(&edges[..1], q))
    }

    /// Hash aggregation: one output row per distinct grouping-key value,
    /// capped by the input cardinality (distinct counts from statistics).
    pub fn hash_aggregate(&self, input: &NodeCost, _q: &[f64]) -> NodeCost {
        let ndv_product: f64 = self
            .query
            .group_by
            .iter()
            .map(|&(rel, col)| {
                let t = self.table(rel);
                t.columns[col.column as usize].stats.ndv.max(1.0)
            })
            .product();
        formulas::hash_aggregate(
            &self.model.p,
            input,
            ndv_product,
            (self.query.group_by.len() as f64 + 1.0) * 8.0,
        )
    }

    /// Spill directive: execute the input, count and discard its output
    /// (pipeline deliberately broken — Section 5.3).
    pub fn spill(&self, input: &NodeCost) -> NodeCost {
        formulas::spill(&self.model.p, input)
    }

    /// Abstract plan costing: re-cost a full plan tree at ESS location `q`.
    pub fn cost(&self, node: &PlanNode, q: &[f64]) -> NodeCost {
        match node {
            PlanNode::SeqScan { rel } => self.seq_scan(*rel, q),
            PlanNode::IndexScan { rel, sel_idx } => self.index_scan(*rel, *sel_idx, q),
            PlanNode::FullIndexScan { rel, .. } => self.full_index_scan(*rel, q),
            PlanNode::HashJoin {
                build,
                probe,
                edges,
            } => {
                let b = self.cost(build, q);
                let p = self.cost(probe, q);
                self.hash_join(&b, &p, edges, q)
            }
            PlanNode::SortMergeJoin {
                left,
                right,
                edges,
                sort_left,
                sort_right,
            } => {
                let l = self.cost(left, q);
                let r = self.cost(right, q);
                self.merge_join(&l, &r, edges, q, *sort_left, *sort_right)
            }
            PlanNode::IndexNLJoin {
                outer,
                inner_rel,
                edges,
            } => {
                let o = self.cost(outer, q);
                self.index_nl_join(&o, *inner_rel, edges, q)
            }
            PlanNode::BlockNLJoin {
                outer,
                inner,
                edges,
            } => {
                let o = self.cost(outer, q);
                let i = self.cost(inner, q);
                self.block_nl_join(&o, &i, edges, q)
            }
            PlanNode::AntiJoin { left, right, edges } => {
                let l = self.cost(left, q);
                let r = self.cost(right, q);
                self.anti_join(&l, &r, edges, q)
            }
            PlanNode::SemiJoin { left, right, edges } => {
                let l = self.cost(left, q);
                let r = self.cost(right, q);
                self.semi_join(&l, &r, edges, q)
            }
            PlanNode::HashAggregate { input } => {
                let i = self.cost(input, q);
                self.hash_aggregate(&i, q)
            }
            PlanNode::Spill { input } => {
                let i = self.cost(input, q);
                self.spill(&i)
            }
        }
    }

    /// Convenience: plan cost only.
    pub fn plan_cost(&self, node: &PlanNode, q: &[f64]) -> f64 {
        self.cost(node, q).cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn setup() -> (pb_catalog::Catalog, QuerySpec, CostModel) {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "eq");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        (cat.clone(), qb.build(), CostModel::postgresish())
    }

    #[test]
    fn seq_scan_cost_independent_of_selectivity_io() {
        let (cat, q, m) = setup();
        let c = Coster::new(&cat, &q, &m);
        let lo = c.seq_scan(0, &[1e-4]);
        let hi = c.seq_scan(0, &[1.0]);
        // Scan I/O identical; only emitted rows differ.
        assert!(hi.cost > lo.cost);
        assert!(hi.cost - lo.cost < 0.02 * hi.cost + 2100.0);
        assert!((hi.rows / lo.rows - 1e4).abs() < 1.0);
    }

    #[test]
    fn index_scan_beats_seq_scan_at_low_selectivity_only() {
        let (cat, q, m) = setup();
        let c = Coster::new(&cat, &q, &m);
        assert!(c.index_scan(0, 0, &[1e-4]).cost < c.seq_scan(0, &[1e-4]).cost);
        assert!(c.index_scan(0, 0, &[0.5]).cost > c.seq_scan(0, &[0.5]).cost);
    }

    #[test]
    fn inl_join_beats_hash_join_at_low_selectivity_only() {
        let (cat, q, m) = setup();
        let c = Coster::new(&cat, &q, &m);
        for (s, inl_wins) in [(1e-4, true), (1.0, false)] {
            let outer = c.index_scan(0, 0, &[s]);
            let inl = c.index_nl_join(&outer, 1, &[0], &[s]);
            let probe = c.seq_scan(1, &[s]);
            let hj = c.hash_join(&outer, &probe, &[0], &[s]);
            assert_eq!(
                inl.cost < hj.cost,
                inl_wins,
                "s={s}: inl={} hj={}",
                inl.cost,
                hj.cost
            );
            // Cardinalities agree between join algorithms.
            assert!((inl.rows - hj.rows).abs() < 1e-6 * inl.rows.max(1.0));
        }
    }

    #[test]
    fn merge_join_sort_flags_change_cost_not_rows() {
        let (cat, q, m) = setup();
        let c = Coster::new(&cat, &q, &m);
        let l = c.seq_scan(1, &[0.5]);
        let r = c.seq_scan(2, &[0.5]);
        let sorted = c.merge_join(&l, &r, &[1], &[0.5], false, false);
        let unsorted = c.merge_join(&l, &r, &[1], &[0.5], true, true);
        assert!(unsorted.cost > sorted.cost);
        assert_eq!(sorted.rows, unsorted.rows);
    }

    #[test]
    fn spill_discards_rows_but_keeps_cost() {
        let (cat, q, m) = setup();
        let c = Coster::new(&cat, &q, &m);
        let input = c.seq_scan(0, &[0.5]);
        let sp = c.spill(&input);
        assert_eq!(sp.rows, 0.0);
        assert!(sp.cost >= input.cost);
    }

    #[test]
    fn tree_walk_matches_incremental() {
        let (cat, q, m) = setup();
        let c = Coster::new(&cat, &q, &m);
        let plan = PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::HashJoin {
                build: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
                probe: Box::new(PlanNode::SeqScan { rel: 1 }),
                edges: vec![0],
            }),
            inner_rel: 2,
            edges: vec![1],
        };
        let s = [0.01];
        let walked = c.cost(&plan, &s);
        let b = c.index_scan(0, 0, &s);
        let p = c.seq_scan(1, &s);
        let hj = c.hash_join(&b, &p, &[0], &s);
        let inl = c.index_nl_join(&hj, 2, &[1], &s);
        assert_eq!(walked.cost, inl.cost);
        assert_eq!(walked.rows, inl.rows);
    }

    #[test]
    fn pcm_all_operators_monotone() {
        let (cat, q, m) = setup();
        let c = Coster::new(&cat, &q, &m);
        let plan = PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan { rel: 0 }),
            probe: Box::new(PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::SeqScan { rel: 2 }),
                inner_rel: 1,
                edges: vec![1],
            }),
            edges: vec![0],
        };
        let mut last = 0.0;
        for i in 0..20 {
            let s = 1e-4 * 10f64.powf(4.0 * i as f64 / 19.0);
            let cost = c.plan_cost(&plan, &[s.min(1.0)]);
            assert!(cost >= last, "PCM violated at s={s}");
            last = cost;
        }
    }

    #[test]
    fn hash_join_grace_penalty_kicks_in() {
        let (cat, q, m) = setup();
        let c = Coster::new(&cat, &q, &m);
        // Build fits: part at low sel. Build spills: lineitem full.
        let small = NodeCost {
            rows: 1000.0,
            cost: 0.0,
            width: 100.0,
        };
        let big = NodeCost {
            rows: 10_000_000.0,
            cost: 0.0,
            width: 100.0,
        };
        let probe = NodeCost {
            rows: 1000.0,
            cost: 0.0,
            width: 100.0,
        };
        let hj_small = c.hash_join(&small, &probe, &[0], &[1.0]);
        let hj_big = c.hash_join(&big, &probe, &[0], &[1.0]);
        let linear_scale = big.rows / small.rows;
        assert!(hj_big.cost > hj_small.cost * linear_scale * 0.5); // sanity
                                                                   // The big build must include partitioning I/O beyond pure CPU scaling.
        let pure_cpu = big.rows * (m.p.cpu_tuple + m.p.hash_build);
        assert!(hj_big.cost > pure_cpu);
    }
}
