//! Uncertainty classification of predicate selectivities (paper,
//! Section 4.1, following Kabra & DeWitt's modeling rules).
//!
//! The first compile-time step of the bouquet pipeline is deciding *which*
//! selectivities are error-prone enough to become ESS dimensions. This
//! module implements the rule-based classification the paper describes:
//! each predicate is placed into an uncertainty bucket from the shape of
//! the predicate and the quality of the statistics backing it, and the
//! buckets above a chosen threshold become the error space. (The fallback —
//! make every estimated selectivity a dimension — is the identity case.)

use pb_catalog::Catalog;
use pb_plan::{CmpOp, QuerySpec};
use serde::{Deserialize, Serialize};

/// Estimation-uncertainty buckets, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Uncertainty {
    /// Structurally reliable (e.g. a key join consumed in full).
    None,
    /// Backed by exact statistics (equality on a column with NDV).
    Low,
    /// Interpolated from coarse summaries (range predicates).
    Medium,
    /// Independence/containment assumptions in play (general joins).
    High,
    /// No usable statistics — "magic number" territory.
    VeryHigh,
}

/// A classified predicate: either the `sel_idx`-th selection of relation
/// `rel`, or join edge `join_idx`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PredicateRef {
    Selection { rel: usize, sel_idx: usize },
    Join { join_idx: usize },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifiedPredicate {
    pub predicate: PredicateRef,
    pub uncertainty: Uncertainty,
    pub reason: String,
}

/// Classify every predicate of `query` against `catalog`'s statistics.
pub fn classify(catalog: &Catalog, query: &QuerySpec) -> Vec<ClassifiedPredicate> {
    let mut out = Vec::new();
    for (ri, r) in query.relations.iter().enumerate() {
        let table = catalog.table_by_id(r.table);
        for (si, s) in r.selections.iter().enumerate() {
            let stats = &table.columns[s.column.column as usize].stats;
            let (u, reason) = if stats.ndv <= 0.0 {
                (
                    Uncertainty::VeryHigh,
                    "no statistics; estimator falls back to magic numbers".into(),
                )
            } else {
                match s.op {
                    CmpOp::Eq => (
                        Uncertainty::Low,
                        format!("equality over NDV={} statistics", stats.ndv),
                    ),
                    CmpOp::Lt | CmpOp::Gt | CmpOp::Between => (
                        Uncertainty::Medium,
                        "range predicate interpolated from column bounds".into(),
                    ),
                }
            };
            out.push(ClassifiedPredicate {
                predicate: PredicateRef::Selection {
                    rel: ri,
                    sel_idx: si,
                },
                uncertainty: u,
                reason,
            });
        }
    }
    for (ji, j) in query.joins.iter().enumerate() {
        let ndv = |c: pb_catalog::ColumnId| {
            let t = catalog.table_by_id(c.table);
            (t.columns[c.column as usize].stats.ndv, t.rows)
        };
        let (ndv_l, rows_l) = ndv(j.left_col);
        let (ndv_r, rows_r) = ndv(j.right_col);
        let key_left = (ndv_l - rows_l).abs() < 0.5 * rows_l.max(1.0) && ndv_l >= rows_l * 0.99;
        let key_right = (ndv_r - rows_r).abs() < 0.5 * rows_r.max(1.0) && ndv_r >= rows_r * 0.99;
        let (u, reason) = if ndv_l <= 0.0 || ndv_r <= 0.0 {
            (
                Uncertainty::VeryHigh,
                "join column without statistics".into(),
            )
        } else if key_left || key_right {
            // Paper, Section 8: PK–FK join selectivities can be estimated
            // accurately *if the entire PK relation participates*; with
            // selections on the PK side that premise breaks, so only an
            // unfiltered key side earns Low.
            let key_rel = if key_left { j.left_rel } else { j.right_rel };
            if query.relations[key_rel].selections.is_empty() {
                (Uncertainty::Low, "unfiltered key join".into())
            } else {
                (
                    Uncertainty::High,
                    "key join, but the key side is filtered".into(),
                )
            }
        } else {
            (
                Uncertainty::High,
                "non-key join under the independence assumption".into(),
            )
        };
        out.push(ClassifiedPredicate {
            predicate: PredicateRef::Join { join_idx: ji },
            uncertainty: u,
            reason,
        });
    }
    out
}

/// Predicates whose uncertainty is at or above `threshold` — the suggested
/// ESS dimensions for a query.
pub fn suggest_error_dims(
    catalog: &Catalog,
    query: &QuerySpec,
    threshold: Uncertainty,
) -> Vec<ClassifiedPredicate> {
    classify(catalog, query)
        .into_iter()
        .filter(|c| c.uncertainty >= threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_plan::{QueryBuilder, SelSpec};

    fn sample() -> (Catalog, QuerySpec) {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "q");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(p, "p_brand", CmpOp::Eq, 3.0, SelSpec::Fixed(0.04));
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::ErrorProne(2));
        (cat.clone(), qb.build())
    }

    #[test]
    fn equality_low_range_medium() {
        let (cat, q) = sample();
        let cls = classify(&cat, &q);
        let eq = cls
            .iter()
            .find(|c| c.predicate == PredicateRef::Selection { rel: 0, sel_idx: 0 })
            .unwrap();
        assert_eq!(eq.uncertainty, Uncertainty::Low);
        let range = cls
            .iter()
            .find(|c| c.predicate == PredicateRef::Selection { rel: 0, sel_idx: 1 })
            .unwrap();
        assert_eq!(range.uncertainty, Uncertainty::Medium);
    }

    #[test]
    fn filtered_key_join_is_high_unfiltered_is_low() {
        let (cat, q) = sample();
        let cls = classify(&cat, &q);
        // p⋈l: part is the key side but carries selections -> High.
        let j0 = cls
            .iter()
            .find(|c| c.predicate == PredicateRef::Join { join_idx: 0 })
            .unwrap();
        assert_eq!(j0.uncertainty, Uncertainty::High, "{}", j0.reason);
        // l⋈o: orders is an unfiltered key side -> Low.
        let j1 = cls
            .iter()
            .find(|c| c.predicate == PredicateRef::Join { join_idx: 1 })
            .unwrap();
        assert_eq!(j1.uncertainty, Uncertainty::Low, "{}", j1.reason);
    }

    #[test]
    fn suggestion_respects_threshold() {
        let (cat, q) = sample();
        let med = suggest_error_dims(&cat, &q, Uncertainty::Medium);
        let high = suggest_error_dims(&cat, &q, Uncertainty::High);
        assert!(high.len() < med.len());
        assert!(high.iter().all(|c| c.uncertainty >= Uncertainty::High));
    }

    #[test]
    fn missing_stats_are_very_high() {
        let (mut cat, q) = sample();
        cat.column_stats_mut("part", "p_brand").ndv = 0.0;
        let cls = classify(&cat, &q);
        let eq = cls
            .iter()
            .find(|c| c.predicate == PredicateRef::Selection { rel: 0, sel_idx: 0 })
            .unwrap();
        assert_eq!(eq.uncertainty, Uncertainty::VeryHigh);
    }
}
