//! Compiled cost programs: abstract plan costing without the tree walk.
//!
//! [`Coster::cost`](crate::Coster::cost) re-costs a plan by recursing over
//! `Box`ed plan nodes, resolving catalog constants (table cardinalities,
//! index heights, NDVs) at every node on every call. Bouquet identification
//! evaluates the *same* plan at thousands of ESS grid points, so that
//! per-call resolution work is pure overhead.
//!
//! [`CostProgram::compile`] lowers a plan once into a flat post-order array
//! of [`ProgOp`]s with every catalog constant pre-resolved; only the
//! predicate→ESS-dimension bindings ([`SelSpec`]) remain symbolic. The
//! program is then evaluated with a reusable [`NodeCost`] stack — no
//! recursion, no pointer chasing, no per-evaluation allocation.
//!
//! Both paths call the scalar formulas in [`crate::formulas`] and resolve
//! selectivity products over the same predicate sequences in the same
//! order, so a program's result is **bit-for-bit identical** to the tree
//! walk's (pinned by `tests/compiled_cost.rs`). That exactness is what lets
//! the pruned diagram build and the runtime drivers swap costing paths
//! freely without perturbing any serialized artifact.

use pb_catalog::Catalog;
use pb_plan::{PlanNode, QuerySpec, SelSpec};

use crate::coster::NodeCost;
use crate::formulas;
use crate::params::{CostModel, CostParams};

/// A `[start, len)` window into the program's selectivity pool.
#[derive(Debug, Clone, Copy)]
struct SelRange {
    start: u32,
    len: u32,
}

/// One post-order instruction. Leaf ops push a [`NodeCost`]; interior ops
/// pop their inputs (right/probe side first — it was compiled last) and
/// push the combined estimate. All `f64` fields are catalog/statistics
/// constants resolved at compile time.
#[derive(Debug, Clone)]
enum ProgOp {
    SeqScan {
        rows: f64,
        pages: f64,
        width: f64,
        npred: f64,
        sels: SelRange,
    },
    IndexScan {
        rows: f64,
        width: f64,
        height: f64,
        leaf_pages: f64,
        nsels: f64,
        ix_sel: SelSpec,
        residual: SelRange,
    },
    FullIndexScan {
        rows: f64,
        width: f64,
        leaf_pages: f64,
        npred: f64,
        sels: SelRange,
    },
    HashJoin {
        nedges: f64,
        edges: SelRange,
    },
    MergeJoin {
        nedges: f64,
        edges: SelRange,
        sort_left: bool,
        sort_right: bool,
    },
    IndexNlJoin {
        inner_rows: f64,
        inner_width: f64,
        npred: f64,
        primary: SelRange,
        residual_edges: SelRange,
        inner_sels: SelRange,
    },
    BlockNlJoin {
        nedges_capped: f64,
        edges: SelRange,
    },
    AntiJoin {
        first_edge: SelRange,
    },
    SemiJoin {
        first_edge: SelRange,
    },
    HashAggregate {
        ndv_product: f64,
        width: f64,
    },
    Spill,
}

/// A plan lowered to a flat post-order op array (see module docs).
#[derive(Debug, Clone)]
pub struct CostProgram {
    params: CostParams,
    ops: Vec<ProgOp>,
    /// Selectivity pool; each op references a contiguous window, preserving
    /// the predicate order of the originating query spec.
    sels: Vec<SelSpec>,
}

impl CostProgram {
    /// Lower `root` into a program. Catalog constants are resolved exactly
    /// like [`Coster`](crate::Coster)'s per-operator methods resolve them.
    pub fn compile(
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
        root: &PlanNode,
    ) -> Self {
        let mut prog = CostProgram {
            params: model.p.clone(),
            ops: Vec::new(),
            sels: Vec::new(),
        };
        prog.lower(catalog, query, root);
        prog
    }

    /// Number of ops (= plan nodes).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn push_sels<'s>(&mut self, specs: impl Iterator<Item = &'s SelSpec>) -> SelRange {
        let start = self.sels.len() as u32;
        self.sels.extend(specs.copied());
        SelRange {
            start,
            len: self.sels.len() as u32 - start,
        }
    }

    fn lower(&mut self, catalog: &Catalog, query: &QuerySpec, node: &PlanNode) {
        let rel_sels = |rel: usize| {
            query.relations[rel]
                .selections
                .iter()
                .map(|s| &s.selectivity)
        };
        let op = match node {
            PlanNode::SeqScan { rel } => {
                let t = catalog.table_by_id(query.relations[*rel].table);
                let sels = self.push_sels(rel_sels(*rel));
                ProgOp::SeqScan {
                    rows: t.rows,
                    pages: t.pages(),
                    width: t.row_width as f64,
                    npred: query.relations[*rel].selections.len() as f64,
                    sels,
                }
            }
            PlanNode::IndexScan { rel, sel_idx } => {
                let t = catalog.table_by_id(query.relations[*rel].table);
                let r = &query.relations[*rel];
                let residual = self.push_sels(
                    r.selections
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i != sel_idx)
                        .map(|(_, s)| &s.selectivity),
                );
                ProgOp::IndexScan {
                    rows: t.rows,
                    width: t.row_width as f64,
                    height: t
                        .index_on(r.selections[*sel_idx].column)
                        .map_or(2.0, |ix| ix.height as f64),
                    leaf_pages: (t.rows / 256.0).max(1.0),
                    nsels: r.selections.len() as f64,
                    ix_sel: r.selections[*sel_idx].selectivity,
                    residual,
                }
            }
            PlanNode::FullIndexScan { rel, .. } => {
                let t = catalog.table_by_id(query.relations[*rel].table);
                let sels = self.push_sels(rel_sels(*rel));
                ProgOp::FullIndexScan {
                    rows: t.rows,
                    width: t.row_width as f64,
                    leaf_pages: (t.rows / 256.0).max(1.0),
                    npred: query.relations[*rel].selections.len() as f64,
                    sels,
                }
            }
            PlanNode::HashJoin {
                build,
                probe,
                edges,
            } => {
                self.lower(catalog, query, build);
                self.lower(catalog, query, probe);
                let edges = self.push_sels(edges.iter().map(|&e| &query.joins[e].selectivity));
                ProgOp::HashJoin {
                    nedges: edges.len as f64,
                    edges,
                }
            }
            PlanNode::SortMergeJoin {
                left,
                right,
                edges,
                sort_left,
                sort_right,
            } => {
                self.lower(catalog, query, left);
                self.lower(catalog, query, right);
                let edges = self.push_sels(edges.iter().map(|&e| &query.joins[e].selectivity));
                ProgOp::MergeJoin {
                    nedges: edges.len as f64,
                    edges,
                    sort_left: *sort_left,
                    sort_right: *sort_right,
                }
            }
            PlanNode::IndexNLJoin {
                outer,
                inner_rel,
                edges,
            } => {
                self.lower(catalog, query, outer);
                let t = catalog.table_by_id(query.relations[*inner_rel].table);
                let primary =
                    self.push_sels(edges[..1].iter().map(|&e| &query.joins[e].selectivity));
                let residual_edges =
                    self.push_sels(edges[1..].iter().map(|&e| &query.joins[e].selectivity));
                let inner_sels = self.push_sels(rel_sels(*inner_rel));
                ProgOp::IndexNlJoin {
                    inner_rows: t.rows,
                    inner_width: t.row_width as f64,
                    npred: query.relations[*inner_rel].selections.len() as f64
                        + (edges.len() as f64 - 1.0).max(0.0),
                    primary,
                    residual_edges,
                    inner_sels,
                }
            }
            PlanNode::BlockNLJoin {
                outer,
                inner,
                edges,
            } => {
                self.lower(catalog, query, outer);
                self.lower(catalog, query, inner);
                let nedges_capped = edges.len().max(1) as f64;
                let edges = self.push_sels(edges.iter().map(|&e| &query.joins[e].selectivity));
                ProgOp::BlockNlJoin {
                    nedges_capped,
                    edges,
                }
            }
            PlanNode::AntiJoin { left, right, edges } => {
                self.lower(catalog, query, left);
                self.lower(catalog, query, right);
                let first_edge =
                    self.push_sels(edges[..1].iter().map(|&e| &query.joins[e].selectivity));
                ProgOp::AntiJoin { first_edge }
            }
            PlanNode::SemiJoin { left, right, edges } => {
                self.lower(catalog, query, left);
                self.lower(catalog, query, right);
                let first_edge =
                    self.push_sels(edges[..1].iter().map(|&e| &query.joins[e].selectivity));
                ProgOp::SemiJoin { first_edge }
            }
            PlanNode::HashAggregate { input } => {
                self.lower(catalog, query, input);
                let ndv_product: f64 = query
                    .group_by
                    .iter()
                    .map(|&(rel, col)| {
                        let t = catalog.table_by_id(query.relations[rel].table);
                        t.columns[col.column as usize].stats.ndv.max(1.0)
                    })
                    .product();
                ProgOp::HashAggregate {
                    ndv_product,
                    width: (query.group_by.len() as f64 + 1.0) * 8.0,
                }
            }
            PlanNode::Spill { input } => {
                self.lower(catalog, query, input);
                ProgOp::Spill
            }
        };
        self.ops.push(op);
    }

    /// Resolve a selectivity window at `q` — same iterator shape (and thus
    /// the same multiplication order) as `Coster::rel_sel`/`edges_sel`.
    #[inline]
    fn sel_product(&self, r: SelRange, q: &[f64]) -> f64 {
        self.sels[r.start as usize..(r.start + r.len) as usize]
            .iter()
            .map(|s| s.resolve(q).clamp(0.0, 1.0))
            .product()
    }

    /// Evaluate at ESS location `q` reusing `stack` as scratch space.
    pub fn eval_with(&self, q: &[f64], stack: &mut Vec<NodeCost>) -> NodeCost {
        stack.clear();
        let p = &self.params;
        for op in &self.ops {
            let nc = match op {
                ProgOp::SeqScan {
                    rows,
                    pages,
                    width,
                    npred,
                    sels,
                } => {
                    formulas::seq_scan(p, *rows, *pages, *width, *npred, self.sel_product(*sels, q))
                }
                ProgOp::IndexScan {
                    rows,
                    width,
                    height,
                    leaf_pages,
                    nsels,
                    ix_sel,
                    residual,
                } => formulas::index_scan(
                    p,
                    *rows,
                    *width,
                    *height,
                    *leaf_pages,
                    *nsels,
                    ix_sel.resolve(q).clamp(0.0, 1.0),
                    self.sel_product(*residual, q),
                ),
                ProgOp::FullIndexScan {
                    rows,
                    width,
                    leaf_pages,
                    npred,
                    sels,
                } => formulas::full_index_scan(
                    p,
                    *rows,
                    *width,
                    *leaf_pages,
                    *npred,
                    self.sel_product(*sels, q),
                ),
                ProgOp::HashJoin { nedges, edges } => {
                    let probe = stack.pop().expect("hash join: missing probe input");
                    let build = stack.pop().expect("hash join: missing build input");
                    formulas::hash_join(p, &build, &probe, self.sel_product(*edges, q), *nedges)
                }
                ProgOp::MergeJoin {
                    nedges,
                    edges,
                    sort_left,
                    sort_right,
                } => {
                    let right = stack.pop().expect("merge join: missing right input");
                    let left = stack.pop().expect("merge join: missing left input");
                    formulas::merge_join(
                        p,
                        &left,
                        &right,
                        self.sel_product(*edges, q),
                        *nedges,
                        *sort_left,
                        *sort_right,
                    )
                }
                ProgOp::IndexNlJoin {
                    inner_rows,
                    inner_width,
                    npred,
                    primary,
                    residual_edges,
                    inner_sels,
                } => {
                    let outer = stack.pop().expect("inl join: missing outer input");
                    formulas::index_nl_join(
                        p,
                        &outer,
                        *inner_rows,
                        *inner_width,
                        self.sel_product(*primary, q),
                        self.sel_product(*residual_edges, q),
                        self.sel_product(*inner_sels, q),
                        *npred,
                    )
                }
                ProgOp::BlockNlJoin {
                    nedges_capped,
                    edges,
                } => {
                    let inner = stack.pop().expect("bnl join: missing inner input");
                    let outer = stack.pop().expect("bnl join: missing outer input");
                    formulas::block_nl_join(
                        p,
                        &outer,
                        &inner,
                        self.sel_product(*edges, q),
                        *nedges_capped,
                    )
                }
                ProgOp::AntiJoin { first_edge } => {
                    let right = stack.pop().expect("anti join: missing right input");
                    let left = stack.pop().expect("anti join: missing left input");
                    formulas::anti_join(p, &left, &right, self.sel_product(*first_edge, q))
                }
                ProgOp::SemiJoin { first_edge } => {
                    let right = stack.pop().expect("semi join: missing right input");
                    let left = stack.pop().expect("semi join: missing left input");
                    formulas::semi_join(p, &left, &right, self.sel_product(*first_edge, q))
                }
                ProgOp::HashAggregate { ndv_product, width } => {
                    let input = stack.pop().expect("aggregate: missing input");
                    formulas::hash_aggregate(p, &input, *ndv_product, *width)
                }
                ProgOp::Spill => {
                    let input = stack.pop().expect("spill: missing input");
                    formulas::spill(p, &input)
                }
            };
            stack.push(nc);
        }
        stack.pop().expect("empty cost program")
    }

    /// Evaluate with a private stack (convenience; allocates).
    pub fn eval(&self, q: &[f64]) -> NodeCost {
        let mut stack = Vec::with_capacity(self.ops.len());
        self.eval_with(q, &mut stack)
    }

    /// Plan cost at `q` (convenience; allocates a stack).
    pub fn cost(&self, q: &[f64]) -> f64 {
        self.eval(q).cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coster::Coster;
    use pb_catalog::tpch;
    use pb_plan::{CmpOp, QueryBuilder};

    fn setup() -> (pb_catalog::Catalog, QuerySpec, CostModel) {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "eq");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        (cat.clone(), qb.build(), CostModel::postgresish())
    }

    fn deep_plan() -> PlanNode {
        PlanNode::Spill {
            input: Box::new(PlanNode::HashAggregate {
                input: Box::new(PlanNode::IndexNLJoin {
                    outer: Box::new(PlanNode::SortMergeJoin {
                        left: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
                        right: Box::new(PlanNode::SeqScan { rel: 1 }),
                        edges: vec![0],
                        sort_left: true,
                        sort_right: false,
                    }),
                    inner_rel: 2,
                    edges: vec![1],
                }),
            }),
        }
    }

    #[test]
    fn matches_tree_walk_bitwise_on_all_operators() {
        let (cat, q, m) = setup();
        let c = Coster::new(&cat, &q, &m);
        let plans = [
            deep_plan(),
            PlanNode::HashJoin {
                build: Box::new(PlanNode::FullIndexScan {
                    rel: 0,
                    column: cat.table("part").unwrap().columns[0].id,
                }),
                probe: Box::new(PlanNode::BlockNLJoin {
                    outer: Box::new(PlanNode::SeqScan { rel: 1 }),
                    inner: Box::new(PlanNode::SeqScan { rel: 2 }),
                    edges: vec![1],
                }),
                edges: vec![0],
            },
            PlanNode::AntiJoin {
                left: Box::new(PlanNode::SeqScan { rel: 1 }),
                right: Box::new(PlanNode::SeqScan { rel: 0 }),
                edges: vec![0],
            },
        ];
        let mut stack = Vec::new();
        for plan in &plans {
            let prog = CostProgram::compile(&cat, &q, &m, plan);
            for s in [1e-4, 3.7e-3, 0.2512, 1.0] {
                let walked = c.cost(plan, &[s]);
                let compiled = prog.eval_with(&[s], &mut stack);
                assert_eq!(walked.cost.to_bits(), compiled.cost.to_bits());
                assert_eq!(walked.rows.to_bits(), compiled.rows.to_bits());
                assert_eq!(walked.width.to_bits(), compiled.width.to_bits());
            }
        }
    }

    #[test]
    fn program_is_flat_postorder() {
        let (cat, q, m) = setup();
        let plan = deep_plan();
        let prog = CostProgram::compile(&cat, &q, &m, &plan);
        assert_eq!(prog.len(), plan.size());
        assert!(!prog.is_empty());
        // Post-order: the root (Spill) op comes last.
        assert!(matches!(prog.ops.last(), Some(ProgOp::Spill)));
    }
}
