//! Bounded cost-modeling errors (paper, Section 3.4).
//!
//! The bouquet's guarantees assume the cost model is perfect. Section 3.4
//! relaxes this to "unbounded estimation errors, bounded modeling errors":
//! the model's cost for a plan, given correct selectivities, is within a
//! multiplicative δ band of the actual execution cost,
//! `c_est / c_actual ∈ [1/(1+δ), (1+δ)]`, and shows
//! `MSO ≤ MSO_perfect · (1+δ)²`.
//!
//! [`CostPerturbation`] realises the adversary: a deterministic, plan- and
//! location-dependent factor inside the δ band that the executor applies to
//! turn *modeled* costs into *actual* costs. Determinism keeps executions
//! repeatable (a bouquet hallmark) while still exercising the worst-case
//! analysis.

use pb_plan::PlanFingerprint;
use serde::{Deserialize, Serialize};

/// Deterministic bounded multiplicative cost perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostPerturbation {
    /// The δ bound; 0.0 disables perturbation. The paper cites an observed
    /// average δ ≈ 0.4 for PostgreSQL on TPC-H (Wu et al., ICDE 2013).
    pub delta: f64,
    /// Seed folded into the hash so different "databases" err differently.
    pub seed: u64,
}

impl CostPerturbation {
    pub fn none() -> Self {
        CostPerturbation {
            delta: 0.0,
            seed: 0,
        }
    }

    pub fn with_delta(delta: f64, seed: u64) -> Self {
        assert!(delta >= 0.0, "delta must be non-negative");
        CostPerturbation { delta, seed }
    }

    /// The multiplicative factor for `plan` at a coarse location bucket.
    /// Always within `[1/(1+δ), (1+δ)]`.
    pub fn factor(&self, plan: PlanFingerprint, q: &[f64]) -> f64 {
        if self.delta == 0.0 {
            return 1.0;
        }
        // Bucket each selectivity to its decade so the factor is stable in a
        // neighbourhood (a plan's modeling error does not oscillate wildly
        // between adjacent locations).
        let mut h = self.seed ^ plan.0;
        for &s in q {
            let decade = s.max(1e-12).log10().floor() as i64;
            h = splitmix64(h ^ decade as u64);
        }
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        let lo = 1.0 / (1.0 + self.delta);
        let hi = 1.0 + self.delta;
        // Geometric interpolation keeps the band symmetric in log space.
        lo * (hi / lo).powf(u)
    }

    /// Actual cost of a plan whose modeled cost is `modeled`.
    pub fn actual_cost(&self, plan: PlanFingerprint, q: &[f64], modeled: f64) -> f64 {
        modeled * self.factor(plan, q)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delta_is_identity() {
        let p = CostPerturbation::none();
        assert_eq!(p.factor(PlanFingerprint(42), &[0.5]), 1.0);
        assert_eq!(p.actual_cost(PlanFingerprint(42), &[0.5], 100.0), 100.0);
    }

    #[test]
    fn factor_stays_in_delta_band() {
        let p = CostPerturbation::with_delta(0.4, 7);
        for fp in 0..200u64 {
            for s in [1e-4, 1e-2, 0.3, 1.0] {
                let f = p.factor(PlanFingerprint(fp), &[s]);
                assert!((1.0 / 1.4 - 1e-12..=1.4 + 1e-12).contains(&f), "f={f}");
            }
        }
    }

    #[test]
    fn factor_is_deterministic_and_locally_stable() {
        let p = CostPerturbation::with_delta(0.4, 7);
        let fp = PlanFingerprint(99);
        let a = p.factor(fp, &[0.02]);
        let b = p.factor(fp, &[0.02]);
        assert_eq!(a, b);
        // Same decade → same factor (local stability).
        assert_eq!(p.factor(fp, &[0.021]), p.factor(fp, &[0.029]));
    }

    #[test]
    fn different_plans_err_differently() {
        let p = CostPerturbation::with_delta(0.4, 7);
        let distinct: std::collections::BTreeSet<u64> = (0..50)
            .map(|fp| p.factor(PlanFingerprint(fp), &[0.5]).to_bits())
            .collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delta_rejected() {
        CostPerturbation::with_delta(-0.1, 0);
    }
}
