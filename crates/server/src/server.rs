//! The bouquet server: admission, dispatch, containment, drain.
//!
//! ```text
//!             ┌──────────── accept loop ───────────┐
//!  TCP conn ──► connection thread (NDJSON lines)   │
//!             │    submit ──► bounded queue ───────┼──► worker pool
//!             │    status/cancel/stats ─► registry │      │ per-request
//!             │    drain ──► stop + await pending  │      │ catch_unwind
//!             └────────────────────────────────────┘      ▼
//!                 supervisor respawns poisoned workers, requests run the
//!                 robust driver on a SimulatorSubstrate with a per-tenant
//!                 spend cap and a per-request cancellation token
//! ```
//!
//! Everything is std: threads, mutexes, condvars, `std::net`. Catalogs,
//! workloads and bouquets are loaded **once** at startup (warm-started
//! through [`BouquetCache`] when a cache directory is given) and shared
//! read-only across workers.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pb_bouquet::{
    Bouquet, BouquetCache, BouquetConfig, ExecutionOutcome, ExecutionSubstrate, RobustConfig,
    SimulatorSubstrate,
};
use pb_cost::Parallelism;
use pb_executor::CostResumeBook;
use pb_faults::{CancelToken, FaultInjector, FaultPlan, PbError};

use crate::metrics::Metrics;
use crate::protocol::{
    read_line, write_line, QueryResult, ReqPhase, Request, Response, ServerStats,
};
use crate::queue::{BoundedQueue, PushError};
use crate::tenant::{Reservation, TenantLedger};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port `0` to let the OS pick (read it back from
    /// [`PbServer::addr`]).
    pub addr: String,
    /// Workload names to load and identify at startup (registry names).
    pub workloads: Vec<String>,
    /// Worker threads executing bouquet runs.
    pub workers: usize,
    /// Admission queue capacity; a full queue rejects with backpressure.
    pub queue_cap: usize,
    /// Per-tenant cumulative spend cap in cost units (`INFINITY` = none).
    pub tenant_cap: f64,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Backoff hint attached to backpressure rejections.
    pub retry_after_ms: u64,
    /// Server-side fault plan (slow-client, queue-stall, worker-panic,
    /// client-disconnect sites). Empty = no faults.
    pub faults: FaultPlan,
    /// Byte cap for each retained checkpoint book.
    pub resume_byte_cap: usize,
    /// Warm-start identification through this [`BouquetCache`] directory.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workloads: vec!["EQ_1D".into()],
            workers: 2,
            queue_cap: 16,
            tenant_cap: f64::INFINITY,
            default_deadline_ms: None,
            retry_after_ms: 50,
            faults: FaultPlan::none(),
            resume_byte_cap: 1 << 20,
            cache_dir: None,
        }
    }
}

/// A loaded, identified workload shared read-only across workers.
struct Loaded {
    bouquet: Bouquet,
}

/// Everything a dispatched request needs outside the registry lock.
struct ReqMeta {
    tenant: String,
    workload: String,
    fractions: Vec<f64>,
    optimized: bool,
    resume: bool,
    cancel: CancelToken,
    reservation: Reservation,
}

struct ReqState {
    tenant: String,
    workload: String,
    fractions: Vec<f64>,
    optimized: bool,
    resume: bool,
    cancel: CancelToken,
    submitted: Instant,
    phase: ReqPhase,
}

/// Retained checkpoint books, keyed by (tenant, workload, qa bits) so a
/// cancelled request's **identical resubmission** resumes.
type BookKey = (String, String, Vec<u64>);

struct Shared {
    cfg: ServerConfig,
    loaded: HashMap<String, Arc<Loaded>>,
    queue: BoundedQueue<u64>,
    reqs: Mutex<HashMap<u64, ReqState>>,
    next_id: AtomicU64,
    ledger: TenantLedger,
    metrics: Metrics,
    faults: Mutex<FaultInjector>,
    books: Mutex<HashMap<BookKey, CostResumeBook>>,
    /// Requests accepted but not yet terminal.
    pending: AtomicUsize,
    inflight: AtomicUsize,
    draining: AtomicBool,
    /// Set once drain decided workers may exit; stops supervisor respawns.
    stop_workers: AtomicBool,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn stats(&self) -> ServerStats {
        self.metrics.snapshot(
            self.queue.len(),
            self.inflight.load(Ordering::Relaxed),
            self.ledger.snapshot(),
        )
    }

    fn book_key(&self, m: &ReqMeta) -> BookKey {
        (
            m.tenant.clone(),
            m.workload.clone(),
            m.fractions.iter().map(|f| f.to_bits()).collect(),
        )
    }
}

/// Payload [`FaultPlan`]-driven worker panics unwind with, so genuine bugs
/// (which unwind with other payloads) stay distinguishable in logs.
struct InjectedPanic;

/// A running server. Dropping the handle does **not** stop the server; call
/// [`PbServer::stop`] (immediate drain) or [`PbServer::wait`] (serve until
/// a client drains it).
pub struct PbServer {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl PbServer {
    /// Load + identify every configured workload, bind, and start serving.
    pub fn start(cfg: ServerConfig) -> Result<PbServer, PbError> {
        let mut loaded = HashMap::new();
        let bcfg = BouquetConfig::default();
        let cache = match &cfg.cache_dir {
            Some(dir) => Some(BouquetCache::new(dir)?),
            None => None,
        };
        for name in &cfg.workloads {
            let w = pb_workloads::by_name(name)
                .ok_or_else(|| PbError::Internal(format!("unknown workload {name}")))?;
            let bouquet = match &cache {
                Some(c) => c.get_or_identify(&w, &bcfg, Parallelism::auto())?.0,
                None => Bouquet::identify(&w, &bcfg)?,
            };
            loaded.insert(name.clone(), Arc::new(Loaded { bouquet }));
        }

        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| PbError::Internal(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| PbError::Internal(format!("local_addr: {e}")))?;

        let workers = cfg.workers.max(1);
        let queue_cap = cfg.queue_cap.max(1);
        let tenant_cap = cfg.tenant_cap;
        let faults = FaultInjector::new(&cfg.faults);
        let shared = Arc::new(Shared {
            cfg,
            loaded,
            queue: BoundedQueue::new(queue_cap),
            reqs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            ledger: TenantLedger::new(tenant_cap),
            metrics: Metrics::default(),
            faults: Mutex::new(faults),
            books: Mutex::new(HashMap::new()),
            pending: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            stop_workers: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            addr,
        });

        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&s))
            })
            .collect();
        let supervisor = {
            let s = Arc::clone(&shared);
            std::thread::spawn(move || supervise(&s, handles))
        };
        let accept = {
            let s = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&s, &listener))
        };
        Ok(PbServer {
            shared,
            accept: Some(accept),
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serve until a client issues `drain`, then join all threads.
    pub fn wait(mut self) -> ServerStats {
        self.join_threads();
        self.shared.stats()
    }

    /// Drain and shut down from the owning process: stop admitting, answer
    /// everything accepted, stop workers, close the listener.
    pub fn stop(mut self) -> ServerStats {
        drain_to_stop(&self.shared);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        poke_accept(&self.shared);
        self.join_threads();
        self.shared.stats()
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

/// Stop admission, wait for every accepted request to reach a terminal
/// state, then let workers exit. Bounded wait: a wedged run past its
/// deadline still counts down via its cancellation token, so in practice
/// pending always reaches zero; the cap is a last-resort escape.
fn drain_to_stop(s: &Shared) {
    s.draining.store(true, Ordering::SeqCst);
    let deadline = Instant::now() + Duration::from_secs(120);
    while s.pending.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    s.stop_workers.store(true, Ordering::SeqCst);
    s.queue.close();
}

/// Unblock the accept loop after `shutdown` is set.
fn poke_accept(s: &Shared) {
    let _ = TcpStream::connect(s.addr);
}

fn accept_loop(s: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if s.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let s2 = Arc::clone(s);
        std::thread::spawn(move || serve_connection(&s2, stream));
    }
}

fn serve_connection(s: &Arc<Shared>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let req: Request = match read_line(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(e) => {
                let _ = write_line(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                continue;
            }
        };
        // Fault site `server:slow-client`: the handler stalls as if the
        // client trickled its line in; workers are unaffected.
        let stall = lock(&s.faults).slow_client_ms();
        if let Some(ms) = stall {
            std::thread::sleep(Duration::from_millis(ms));
        }
        let is_drain = req == Request::Drain;
        let resp = handle_request(s, req);
        // Fault site `server:client-disconnect`: drop the connection
        // before the response is written. The request itself (if any) was
        // already admitted and will complete server-side.
        if lock(&s.faults).client_disconnect() {
            return;
        }
        if write_line(&mut writer, &resp).is_err() {
            return;
        }
        if is_drain {
            s.shutdown.store(true, Ordering::SeqCst);
            poke_accept(s);
            return;
        }
    }
}

fn handle_request(s: &Arc<Shared>, req: Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Submit {
            tenant,
            workload,
            fractions,
            optimized,
            resume,
            deadline_ms,
        } => submit(
            s,
            tenant,
            workload,
            fractions,
            optimized,
            resume,
            deadline_ms,
        ),
        Request::Status { id } => match lock(&s.reqs).get(&id) {
            Some(r) => Response::Status {
                id,
                phase: r.phase.clone(),
            },
            None => Response::Error {
                message: format!("unknown request id {id}"),
            },
        },
        Request::Cancel { id } => match lock(&s.reqs).get(&id) {
            Some(r) => {
                r.cancel.cancel();
                Response::Status {
                    id,
                    phase: r.phase.clone(),
                }
            }
            None => Response::Error {
                message: format!("unknown request id {id}"),
            },
        },
        Request::Stats => Response::Stats { stats: s.stats() },
        Request::Drain => {
            drain_to_stop(s);
            Response::Drained { stats: s.stats() }
        }
    }
}

fn submit(
    s: &Arc<Shared>,
    tenant: String,
    workload: String,
    fractions: Vec<f64>,
    optimized: bool,
    resume: bool,
    deadline_ms: Option<u64>,
) -> Response {
    s.metrics.submitted.fetch_add(1, Ordering::Relaxed);
    if s.draining.load(Ordering::SeqCst) {
        s.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::Rejected {
            reason: "draining".into(),
            retry_after_ms: s.cfg.retry_after_ms,
        };
    }
    let Some(loaded) = s.loaded.get(&workload) else {
        return Response::Error {
            message: format!("unknown workload {workload}"),
        };
    };
    let d = loaded.bouquet.workload.ess.d();
    if fractions.len() != d || fractions.iter().any(|f| !(0.0..=1.0).contains(f)) {
        return Response::Error {
            message: format!("fractions must be {d} values in [0,1]"),
        };
    }
    let cancel = match deadline_ms.or(s.cfg.default_deadline_ms) {
        Some(ms) => CancelToken::with_timeout(Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    let id = s.next_id.fetch_add(1, Ordering::SeqCst);
    lock(&s.reqs).insert(
        id,
        ReqState {
            tenant,
            workload,
            fractions,
            optimized,
            resume,
            cancel,
            submitted: Instant::now(),
            phase: ReqPhase::Queued,
        },
    );
    s.pending.fetch_add(1, Ordering::SeqCst);
    match s.queue.try_push(id) {
        Ok(depth) => {
            s.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            Response::Accepted {
                id,
                queue_depth: depth,
            }
        }
        Err(e) => {
            lock(&s.reqs).remove(&id);
            s.pending.fetch_sub(1, Ordering::SeqCst);
            s.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            Response::Rejected {
                reason: match e {
                    PushError::Full => "queue full".into(),
                    PushError::Closed => "draining".into(),
                },
                retry_after_ms: s.cfg.retry_after_ms,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

fn worker_loop(s: &Arc<Shared>) {
    while let Some(id) = s.queue.pop() {
        // Fault site `server:queue-stall`: dispatch hiccups, surfacing as
        // added queueing latency — never as a dropped request.
        let stall = lock(&s.faults).queue_stall_ms();
        if let Some(ms) = stall {
            std::thread::sleep(Duration::from_millis(ms));
        }
        let Some(meta) = begin_request(s, id) else {
            continue;
        };
        s.inflight.fetch_add(1, Ordering::SeqCst);
        let run = catch_unwind(AssertUnwindSafe(|| execute_request(s, id, &meta)));
        s.inflight.fetch_sub(1, Ordering::SeqCst);
        if run.is_err() {
            // Containment: the request gets a typed terminal error, the
            // tenant is charged its full reservation (an over- but never an
            // under-charge: the run's spend is bounded by it), and this
            // worker is considered poisoned — it exits and the supervisor
            // replaces it. The server never goes down.
            s.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
            let charged = if meta.reservation.amount.is_finite() {
                meta.reservation.amount
            } else {
                0.0
            };
            s.ledger.settle(&meta.reservation, charged);
            finish(
                s,
                id,
                QueryResult {
                    outcome: "failed".into(),
                    total_cost: charged,
                    reused_cost: 0.0,
                    final_plan: None,
                    subopt: None,
                    events: 0,
                    error: Some(
                        PbError::Internal("worker panicked; request aborted".into()).to_string(),
                    ),
                },
            );
            return;
        }
    }
}

/// Respawn poisoned workers until the server decides they may exit.
fn supervise(s: &Arc<Shared>, mut handles: Vec<JoinHandle<()>>) {
    loop {
        std::thread::sleep(Duration::from_millis(5));
        let stopping = s.stop_workers.load(Ordering::SeqCst);
        for h in &mut handles {
            if h.is_finished() && !stopping {
                let s2 = Arc::clone(s);
                let fresh = std::thread::spawn(move || worker_loop(&s2));
                let dead = std::mem::replace(h, fresh);
                let _ = dead.join();
                s.metrics.workers_replaced.fetch_add(1, Ordering::Relaxed);
            }
        }
        if stopping && handles.iter().all(JoinHandle::is_finished) {
            for h in handles {
                let _ = h.join();
            }
            return;
        }
    }
}

/// Mark `id` running, snapshot its fields and reserve its tenant budget.
fn begin_request(s: &Arc<Shared>, id: u64) -> Option<ReqMeta> {
    let (tenant, workload, fractions, optimized, resume, cancel) = {
        let mut reqs = lock(&s.reqs);
        let r = reqs.get_mut(&id)?;
        r.phase = ReqPhase::Running;
        (
            r.tenant.clone(),
            r.workload.clone(),
            r.fractions.clone(),
            r.optimized,
            r.resume,
            r.cancel.clone(),
        )
    };
    let reservation = s.ledger.reserve(&tenant);
    Some(ReqMeta {
        tenant,
        workload,
        fractions,
        optimized,
        resume,
        cancel,
        reservation,
    })
}

/// Execute one admitted request end to end. Panics (injected or genuine)
/// unwind to the worker loop's containment.
#[allow(clippy::panic)] // the worker-panic fault site unwinds on purpose
fn execute_request(s: &Arc<Shared>, id: u64, meta: &ReqMeta) {
    if lock(&s.faults).worker_panic() {
        // Deliberate unwind — the `server:worker-panic` fault site.
        std::panic::panic_any(InjectedPanic);
    }
    let Some(loaded) = s.loaded.get(&meta.workload) else {
        s.ledger.settle(&meta.reservation, 0.0);
        finish(
            s,
            id,
            fail_result(&PbError::Internal("workload vanished".into())),
        );
        return;
    };
    let b = &loaded.bouquet;
    let qa = b.workload.ess.point_at_fractions(&meta.fractions);
    let cfg = RobustConfig {
        optimized: meta.optimized,
        resume: meta.resume,
        spend_cap: meta
            .reservation
            .amount
            .is_finite()
            .then_some(meta.reservation.amount),
        cancel: Some(meta.cancel.clone()),
        ..Default::default()
    };
    let mut sub = match SimulatorSubstrate::new(b, &qa, FaultInjector::none()) {
        Ok(sub) => sub.with_cancel(meta.cancel.clone()),
        Err(e) => {
            s.ledger.settle(&meta.reservation, 0.0);
            finish(s, id, fail_result(&e));
            return;
        }
    };
    if meta.resume {
        sub.set_resume_byte_cap(s.cfg.resume_byte_cap);
        let key = s.book_key(meta);
        if let Some(book) = lock(&s.books).remove(&key) {
            sub.install_resume_book(book);
        }
    }

    match b.run_robust_on(&mut sub, &cfg) {
        Ok(rr) => {
            let stats = sub.resume_stats();
            let (outcome, final_plan, cancelled) = match rr.run.outcome {
                ExecutionOutcome::Completed { final_plan, .. } => {
                    ("completed", Some(final_plan), false)
                }
                ExecutionOutcome::Degraded { final_plan, .. } => {
                    ("degraded", Some(final_plan), false)
                }
                ExecutionOutcome::BudgetExhausted { .. } => ("budget-exhausted", None, false),
                ExecutionOutcome::Cancelled { .. } => ("cancelled", None, true),
            };
            let key = s.book_key(meta);
            if meta.resume {
                match (cancelled, sub.take_resume_book()) {
                    // Retain checkpoints for the resubmission of a
                    // cancelled request; drop them once a terminal answer
                    // was produced.
                    (true, Some(book)) => {
                        lock(&s.books).insert(key, book);
                    }
                    _ => {
                        lock(&s.books).remove(&key);
                    }
                }
            }
            let subopt = if outcome == "completed" {
                let opt = sub.run_native_at(&qa);
                let so = (stats.reused_cost + rr.run.total_cost) / opt;
                s.metrics.observe_subopt(so);
                Some(so)
            } else {
                None
            };
            s.ledger.settle(&meta.reservation, rr.run.total_cost);
            finish(
                s,
                id,
                QueryResult {
                    outcome: outcome.into(),
                    total_cost: rr.run.total_cost,
                    reused_cost: stats.reused_cost,
                    final_plan,
                    subopt,
                    events: rr.events.len(),
                    error: None,
                },
            );
        }
        Err(e) => {
            s.ledger.settle(&meta.reservation, 0.0);
            finish(s, id, fail_result(&e));
        }
    }
}

fn fail_result(e: &PbError) -> QueryResult {
    QueryResult {
        outcome: "failed".into(),
        total_cost: 0.0,
        reused_cost: 0.0,
        final_plan: None,
        subopt: None,
        events: 0,
        error: Some(e.to_string()),
    }
}

/// Record a request's terminal state: registry phase, outcome counter,
/// latency, pending count. Every accepted request passes through here
/// exactly once.
fn finish(s: &Arc<Shared>, id: u64, result: QueryResult) {
    match result.outcome.as_str() {
        "completed" => &s.metrics.completed,
        "degraded" => &s.metrics.degraded,
        "budget-exhausted" => &s.metrics.budget_exhausted,
        "cancelled" => &s.metrics.cancelled,
        _ => &s.metrics.failed,
    }
    .fetch_add(1, Ordering::Relaxed);
    let mut reqs = lock(&s.reqs);
    if let Some(r) = reqs.get_mut(&id) {
        s.metrics
            .observe_latency(r.submitted.elapsed().as_secs_f64() * 1e3);
        r.phase = ReqPhase::Done(result);
    }
    drop(reqs);
    s.pending.fetch_sub(1, Ordering::SeqCst);
}
