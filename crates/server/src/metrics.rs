//! Server-wide counters and latency quantiles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::protocol::ServerStats;

/// Lock-free counters plus a mutex-guarded latency record. Latencies are
/// kept exactly (one f64 per completed request) — a serving benchmark runs
/// thousands of requests, not billions, and exact p99 beats a sketch when
/// the numbers land in a regression gate.
#[derive(Default)]
pub struct Metrics {
    pub submitted: AtomicU64,
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub degraded: AtomicU64,
    pub budget_exhausted: AtomicU64,
    pub cancelled: AtomicU64,
    pub failed: AtomicU64,
    pub worker_panics: AtomicU64,
    pub workers_replaced: AtomicU64,
    latencies_ms: Mutex<Vec<f64>>,
    max_subopt: Mutex<f64>,
}

impl Metrics {
    pub fn observe_latency(&self, ms: f64) {
        self.latencies_ms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(ms);
    }

    /// Fold one completed run's sub-optimality into the running maximum —
    /// the server's "MSO so far".
    pub fn observe_subopt(&self, subopt: f64) {
        let mut m = self
            .max_subopt
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if subopt > *m {
            *m = subopt;
        }
    }

    /// Latency quantile in milliseconds (nearest-rank); `0` with no data.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        let mut v = self
            .latencies_ms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if v.is_empty() {
            return 0.0;
        }
        v.sort_by(f64::total_cmp);
        let idx = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
        v[idx]
    }

    pub fn snapshot(
        &self,
        queue_depth: usize,
        inflight: usize,
        tenants: Vec<(String, f64, f64)>,
    ) -> ServerStats {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServerStats {
            submitted: g(&self.submitted),
            accepted: g(&self.accepted),
            rejected: g(&self.rejected),
            completed: g(&self.completed),
            degraded: g(&self.degraded),
            budget_exhausted: g(&self.budget_exhausted),
            cancelled: g(&self.cancelled),
            failed: g(&self.failed),
            worker_panics: g(&self.worker_panics),
            workers_replaced: g(&self.workers_replaced),
            queue_depth,
            inflight,
            p50_ms: self.latency_quantile(0.50),
            p99_ms: self.latency_quantile(0.99),
            max_subopt: *self
                .max_subopt
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let m = Metrics::default();
        for i in 1..=100 {
            m.observe_latency(f64::from(i));
        }
        assert_eq!(m.latency_quantile(0.50), 50.0);
        assert_eq!(m.latency_quantile(0.99), 99.0);
        assert_eq!(m.latency_quantile(1.0), 100.0);
    }

    #[test]
    fn empty_metrics_snapshot_is_zero() {
        let m = Metrics::default();
        let s = m.snapshot(0, 0, Vec::new());
        assert_eq!(s.p50_ms, 0.0);
        assert_eq!(s.max_subopt, 0.0);
        assert_eq!(s.accepted, 0);
    }

    #[test]
    fn max_subopt_is_monotone() {
        let m = Metrics::default();
        m.observe_subopt(2.0);
        m.observe_subopt(1.5);
        m.observe_subopt(3.0);
        assert_eq!(m.snapshot(0, 0, Vec::new()).max_subopt, 3.0);
    }
}
