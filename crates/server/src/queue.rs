//! Bounded admission queue with explicit backpressure.
//!
//! Producers never block: a full queue rejects immediately (the protocol
//! turns that into `Rejected { retry_after_ms }`), so admission cost is
//! O(1) regardless of load. Consumers block on a condvar. `close()` stops
//! admission but lets consumers drain what was already accepted — the
//! mechanism behind graceful drain: every accepted request is answered.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// At capacity — back off and retry.
    Full,
    /// Closed (draining/shut down) — do not retry here.
    Closed,
}

struct State<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue (mutex + condvar, std only).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                q: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Recover the guard even if a holder panicked: queue state is a plain
    /// VecDeque plus a flag, valid at every instruction boundary, and
    /// poisoning-on-panic would otherwise take the whole server down with
    /// the one faulty worker.
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking admission; `Ok(depth)` is the queue depth after the
    /// push.
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.q.len() >= self.cap {
            return Err(PushError::Full);
        }
        s.q.push_back(item);
        let depth = s.q.len();
        drop(s);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Blocking pop: `None` only once the queue is closed **and** empty, so
    /// closing never abandons accepted work.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.q.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn len(&self) -> usize {
        self.lock().q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stop admission; blocked consumers wake and drain the remainder.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn close_drains_accepted_items_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }
}
