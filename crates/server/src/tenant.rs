//! Per-tenant cost-unit budget accounting.
//!
//! Each tenant holds a cumulative spend cap. Dispatch *reserves* the
//! tenant's full remaining budget for the request and threads it into the
//! robust driver as [`pb_bouquet::RobustConfig::spend_cap`]; the driver
//! guarantees the run's total never exceeds it, so
//!
//! ```text
//! spent + reserved ≤ cap        (at every instant)
//! ```
//!
//! is an invariant no interleaving can break — a tenant that exhausts its
//! budget has *its* requests land on the capped rung (degraded or
//! budget-exhausted), while other tenants' accounting is untouched.
//! Reservations are strict: a second concurrent request from the same
//! tenant sees only what the first left behind.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

struct Account {
    cap: f64,
    spent: f64,
    reserved: f64,
}

/// A granted reservation. Settlement is exactly-once: panic-containment
/// paths may race a normal settle, and a double settle would double-charge
/// `spent` past the cap.
#[derive(Debug)]
pub struct Reservation {
    pub tenant: String,
    /// Cost units this request may spend (the tenant's remaining budget at
    /// dispatch; `0` for an exhausted tenant).
    pub amount: f64,
    settled: AtomicBool,
}

/// Thread-safe tenant ledger.
pub struct TenantLedger {
    accounts: Mutex<HashMap<String, Account>>,
    default_cap: f64,
}

impl TenantLedger {
    /// `default_cap` is the per-tenant cumulative budget in cost units;
    /// `f64::INFINITY` disables capping.
    pub fn new(default_cap: f64) -> Self {
        TenantLedger {
            accounts: Mutex::new(HashMap::new()),
            default_cap,
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, Account>> {
        self.accounts.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Reserve the tenant's entire remaining budget for one request.
    pub fn reserve(&self, tenant: &str) -> Reservation {
        let mut a = self.lock();
        let acc = a.entry(tenant.to_string()).or_insert(Account {
            cap: self.default_cap,
            spent: 0.0,
            reserved: 0.0,
        });
        let remaining = (acc.cap - acc.spent - acc.reserved).max(0.0);
        acc.reserved += remaining;
        Reservation {
            tenant: tenant.to_string(),
            amount: remaining,
            settled: AtomicBool::new(false),
        }
    }

    /// Settle a reservation with the actual spend (clamped into the
    /// reservation so accounting can never exceed the cap even if a caller
    /// mis-reports). Second and later settles of the same reservation are
    /// no-ops.
    pub fn settle(&self, r: &Reservation, actual: f64) {
        if r.settled.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut a = self.lock();
        if let Some(acc) = a.get_mut(&r.tenant) {
            acc.reserved = (acc.reserved - r.amount).max(0.0);
            acc.spent += actual.clamp(0.0, r.amount);
        }
    }

    /// `(tenant, spent, cap)` rows, sorted by tenant for stable output. An
    /// uncapped tenant reports cap `-1.0` (JSON cannot carry infinity).
    pub fn snapshot(&self) -> Vec<(String, f64, f64)> {
        let a = self.lock();
        let mut rows: Vec<_> = a
            .iter()
            .map(|(t, acc)| {
                let cap = if acc.cap.is_finite() { acc.cap } else { -1.0 };
                (t.clone(), acc.spent, cap)
            })
            .collect();
        rows.sort_by(|x, y| x.0.cmp(&y.0));
        rows
    }

    /// True iff some tenant's `spent` exceeds its cap (should be
    /// unreachable; chaos asserts on it).
    pub fn any_over_cap(&self) -> bool {
        self.lock()
            .values()
            .any(|acc| acc.spent > acc.cap * (1.0 + 1e-9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_partition_the_cap() {
        let l = TenantLedger::new(100.0);
        let r1 = l.reserve("a");
        assert_eq!(r1.amount, 100.0);
        let r2 = l.reserve("a");
        assert_eq!(r2.amount, 0.0, "concurrent request sees nothing left");
        l.settle(&r1, 60.0);
        l.settle(&r2, 0.0);
        let r3 = l.reserve("a");
        assert_eq!(r3.amount, 40.0);
    }

    #[test]
    fn tenants_are_isolated() {
        let l = TenantLedger::new(50.0);
        let ra = l.reserve("a");
        l.settle(&ra, 50.0);
        assert_eq!(l.reserve("a").amount, 0.0);
        assert_eq!(l.reserve("b").amount, 50.0, "b unaffected by a's spend");
        assert!(!l.any_over_cap());
    }

    #[test]
    fn settle_is_exactly_once() {
        let l = TenantLedger::new(100.0);
        let r = l.reserve("a");
        l.settle(&r, 30.0);
        l.settle(&r, 30.0);
        assert_eq!(l.snapshot(), vec![("a".to_string(), 30.0, 100.0)]);
        assert_eq!(l.reserve("a").amount, 70.0);
    }

    #[test]
    fn settle_clamps_into_the_reservation() {
        let l = TenantLedger::new(10.0);
        let r = l.reserve("a");
        l.settle(&r, 1e9);
        assert!(!l.any_over_cap());
        assert_eq!(l.snapshot(), vec![("a".to_string(), 10.0, 10.0)]);
    }
}
