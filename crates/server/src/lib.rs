//! Bouquet-as-a-service: a fault-tolerant multi-tenant server for plan
//! bouquet execution.
//!
//! A long-lived process loads catalogs, workloads and identified bouquets
//! **once** (warm-started through [`pb_bouquet::BouquetCache`]) and serves
//! concurrent bouquet executions over the existing
//! [`pb_bouquet::ExecutionSubstrate`] machinery. Robustness is layered:
//!
//! * **admission control** — a bounded queue rejects with an explicit
//!   `retry_after_ms` instead of queueing unboundedly ([`queue`]);
//! * **tenant isolation** — per-tenant cumulative spend caps threaded into
//!   the robust driver as [`pb_bouquet::RobustConfig::spend_cap`], so an
//!   exhausted tenant degrades *its own* queries and never a neighbour's
//!   ([`tenant`]);
//! * **deadlines + cancellation** — a per-request [`pb_faults::CancelToken`]
//!   polled cooperatively by the drivers and the execution substrates;
//!   cancelled runs keep their checkpoints, so an identical resubmission
//!   resumes instead of restarting;
//! * **containment** — a panicking worker poisons only itself: the request
//!   gets a typed error, the supervisor spawns a replacement, the server
//!   stays up ([`server`]);
//! * **graceful drain** — admission stops, every accepted request is
//!   answered, then the process exits.
//!
//! Transport is newline-delimited JSON over `std::net` TCP ([`protocol`]) —
//! the whole crate is std-only by design (the build container has no async
//! runtime, and the concurrency story is plain threads end to end).

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod tenant;

pub use client::PbClient;
pub use protocol::{QueryResult, ReqPhase, Request, Response, ServerStats};
pub use queue::{BoundedQueue, PushError};
pub use server::{PbServer, ServerConfig};
pub use tenant::{Reservation, TenantLedger};
