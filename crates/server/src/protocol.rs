//! Wire protocol: newline-delimited JSON over TCP.
//!
//! One request line yields exactly one response line (unless a
//! `client-disconnect` fault drops the connection first — clients must treat
//! a vanished connection as "resubmit and poll"). Submission is
//! asynchronous: `submit` returns an id immediately and the client polls
//! `status` until the request reaches a terminal state. This keeps the
//! connection handler trivially non-blocking with respect to execution, so
//! slow clients can never wedge a worker.

use std::io::{BufRead, Write};

use pb_faults::PbError;
use serde::{Deserialize, Serialize};

/// A client request (one JSON value per line, externally tagged: unit ops
/// are bare strings — `"Ping"` — and payload ops single-key objects —
/// `{"Submit":{...}}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enqueue a bouquet execution. `fractions` give the true query
    /// location per ESS axis in `[0,1]` (the same convention as `pbq run`).
    Submit {
        tenant: String,
        workload: String,
        fractions: Vec<f64>,
        /// Run the optimized (Figure 13) driver instead of the basic one.
        #[serde(default)]
        optimized: bool,
        /// Enable checkpoint/resume; a cancelled request's checkpoints are
        /// retained so an identical resubmission resumes.
        #[serde(default)]
        resume: bool,
        /// Per-request deadline; the run is cooperatively cancelled once it
        /// passes. `None` uses the server default.
        #[serde(default)]
        deadline_ms: Option<u64>,
    },
    /// Poll a submitted request.
    Status { id: u64 },
    /// Cooperatively cancel a queued or running request. The request still
    /// reaches a terminal state (observable via `status`).
    Cancel { id: u64 },
    /// Server-wide counters and latency quantiles.
    Stats,
    /// Graceful drain: stop admitting, finish everything queued and in
    /// flight, then shut down. The response carries the final stats.
    Drain,
}

/// Terminal outcome of a served request, flattened for the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// `completed` | `degraded` | `budget-exhausted` | `cancelled` |
    /// `failed`.
    pub outcome: String,
    /// Cost units actually paid by this run.
    pub total_cost: f64,
    /// Cost units fast-forwarded from retained checkpoints.
    pub reused_cost: f64,
    /// Plan that produced the result, when one did.
    pub final_plan: Option<usize>,
    /// `total_cost / C_opt(qa)` — the run's sub-optimality against the
    /// optimal cost at its own true location.
    pub subopt: Option<f64>,
    /// Robustness events (retries, abandons, cap hits, …) the run logged.
    pub events: usize,
    /// Terminal error for `failed` (typed `PbError` rendering).
    pub error: Option<String>,
}

/// Lifecycle phase reported by `status`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReqPhase {
    Queued,
    Running,
    Done(QueryResult),
}

/// Server-wide counters (a point-in-time snapshot).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    pub submitted: u64,
    pub accepted: u64,
    /// Backpressure rejections (queue full) + drain rejections.
    pub rejected: u64,
    pub completed: u64,
    pub degraded: u64,
    pub budget_exhausted: u64,
    pub cancelled: u64,
    pub failed: u64,
    /// Requests whose worker panicked (each still reached `failed`).
    pub worker_panics: u64,
    /// Poisoned workers replaced by the supervisor.
    pub workers_replaced: u64,
    pub queue_depth: usize,
    pub inflight: usize,
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// Max sub-optimality over completed runs — MSO observed so far.
    pub max_subopt: f64,
    /// Per-tenant `(spent, cap)` cost-unit accounting.
    pub tenants: Vec<(String, f64, f64)>,
}

/// A server response (one JSON value per line, externally tagged).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    Pong,
    /// The request was admitted at the given queue depth.
    Accepted {
        id: u64,
        queue_depth: usize,
    },
    /// Backpressure: the bounded queue is full (or the server is draining).
    /// The client should retry after `retry_after_ms`.
    Rejected {
        reason: String,
        retry_after_ms: u64,
    },
    Status {
        id: u64,
        phase: ReqPhase,
    },
    Stats {
        stats: ServerStats,
    },
    /// Drain finished; final stats attached.
    Drained {
        stats: ServerStats,
    },
    /// Malformed request, unknown id/workload, … — the connection survives.
    Error {
        message: String,
    },
}

/// Write one protocol value as a JSON line.
pub fn write_line<T: Serialize, W: Write>(w: &mut W, v: &T) -> Result<(), PbError> {
    let s = serde_json::to_string(v).map_err(|e| PbError::Internal(format!("encode: {e}")))?;
    w.write_all(s.as_bytes())
        .and_then(|()| w.write_all(b"\n"))
        .and_then(|()| w.flush())
        .map_err(|e| PbError::Internal(format!("write: {e}")))
}

/// Read one protocol value from a JSON line; `Ok(None)` on clean EOF.
pub fn read_line<T: Deserialize, R: BufRead>(r: &mut R) -> Result<Option<T>, PbError> {
    let mut line = String::new();
    let n = r
        .read_line(&mut line)
        .map_err(|e| PbError::Internal(format!("read: {e}")))?;
    if n == 0 {
        return Ok(None);
    }
    let t = line.trim();
    if t.is_empty() {
        return Ok(None);
    }
    serde_json::from_str(t)
        .map(Some)
        .map_err(|e| PbError::Internal(format!("decode: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Ping,
            Request::Submit {
                tenant: "t0".into(),
                workload: "EQ_1D".into(),
                fractions: vec![0.5],
                optimized: true,
                resume: false,
                deadline_ms: Some(250),
            },
            Request::Status { id: 7 },
            Request::Cancel { id: 7 },
            Request::Stats,
            Request::Drain,
        ];
        for r in reqs {
            let mut buf = Vec::new();
            write_line(&mut buf, &r).unwrap();
            let back: Request = read_line(&mut buf.as_slice()).unwrap().unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn submit_defaults_are_optional_on_the_wire() {
        let line = r#"{"Submit":{"tenant":"t","workload":"EQ_1D","fractions":[0.5]}}"#;
        let r: Request = serde_json::from_str(line).unwrap();
        assert_eq!(
            r,
            Request::Submit {
                tenant: "t".into(),
                workload: "EQ_1D".into(),
                fractions: vec![0.5],
                optimized: false,
                resume: false,
                deadline_ms: None,
            }
        );
    }

    #[test]
    fn eof_reads_as_none() {
        let empty: Option<Request> = read_line(&mut "".as_bytes()).unwrap();
        assert!(empty.is_none());
    }
}
