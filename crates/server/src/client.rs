//! A small blocking client for the NDJSON protocol — used by `pbq serve`
//! smoke mode, the serving benchmark and the chaos campaign.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use pb_faults::PbError;

use crate::protocol::{read_line, write_line, QueryResult, ReqPhase, Request, Response};

/// One TCP connection speaking the line protocol.
pub struct PbClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl PbClient {
    pub fn connect(addr: SocketAddr) -> Result<PbClient, PbError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| PbError::Internal(format!("connect {addr}: {e}")))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| PbError::Internal(format!("clone stream: {e}")))?;
        Ok(PbClient {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// One request, one response. A dropped connection (e.g. the
    /// `client-disconnect` fault) surfaces as an error.
    pub fn request(&mut self, req: &Request) -> Result<Response, PbError> {
        write_line(&mut self.writer, req)?;
        read_line(&mut self.reader)?
            .ok_or_else(|| PbError::Internal("connection closed by server".into()))
    }

    /// Submit and return the assigned id, or the rejection.
    pub fn submit(&mut self, req: &Request) -> Result<Result<u64, Response>, PbError> {
        match self.request(req)? {
            Response::Accepted { id, .. } => Ok(Ok(id)),
            other => Ok(Err(other)),
        }
    }

    /// Poll `status` until the request is terminal or `timeout` passes.
    pub fn wait(&mut self, id: u64, timeout: Duration) -> Result<QueryResult, PbError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.request(&Request::Status { id })? {
                Response::Status {
                    phase: ReqPhase::Done(result),
                    ..
                } => return Ok(result),
                Response::Status { .. } => {}
                other => {
                    return Err(PbError::Internal(format!(
                        "unexpected status reply: {other:?}"
                    )))
                }
            }
            if Instant::now() >= deadline {
                return Err(PbError::Internal(format!("request {id} timed out")));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
