//! End-to-end server tests over real TCP on localhost.

// Helper fns sit outside `#[test]` bodies, where clippy.toml's
// allow-*-in-tests doesn't reach; tests may use all three regardless.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::time::Duration;

use pb_faults::{FaultKind, FaultPlan, Trigger};
use pb_server::{PbClient, PbServer, QueryResult, ReqPhase, Request, Response, ServerConfig};

fn submit_req(tenant: &str, frac: f64) -> Request {
    Request::Submit {
        tenant: tenant.into(),
        workload: "EQ_1D".into(),
        fractions: vec![frac],
        optimized: false,
        resume: false,
        deadline_ms: None,
    }
}

fn wait_done(c: &mut PbClient, id: u64) -> QueryResult {
    c.wait(id, Duration::from_secs(30)).expect("terminal state")
}

#[test]
fn submit_status_cancel_drain_roundtrip() {
    let server = PbServer::start(ServerConfig::default()).expect("server starts");
    let mut c = PbClient::connect(server.addr()).expect("connect");

    assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);

    // Plain submit completes with a bounded sub-optimality.
    let id = c
        .submit(&submit_req("alice", 0.63))
        .unwrap()
        .expect("accepted");
    let r = wait_done(&mut c, id);
    assert_eq!(r.outcome, "completed");
    assert!(r.total_cost > 0.0);
    let subopt = r.subopt.expect("completed runs report subopt");
    assert!(subopt >= 1.0 - 1e-9, "subopt {subopt} below 1");

    // Cancel an already-finished request: phase stays Done.
    match c.request(&Request::Cancel { id }).unwrap() {
        Response::Status {
            phase: ReqPhase::Done(_),
            ..
        } => {}
        other => panic!("unexpected: {other:?}"),
    }

    // Unknown ids and workloads are typed errors, not connection drops.
    assert!(matches!(
        c.request(&Request::Status { id: 999_999 }).unwrap(),
        Response::Error { .. }
    ));
    let bad = Request::Submit {
        tenant: "alice".into(),
        workload: "NOPE".into(),
        fractions: vec![0.5],
        optimized: false,
        resume: false,
        deadline_ms: None,
    };
    assert!(matches!(c.request(&bad).unwrap(), Response::Error { .. }));

    // Drain answers with final stats; every accepted request was served.
    match c.request(&Request::Drain).unwrap() {
        Response::Drained { stats } => {
            assert_eq!(stats.queue_depth, 0);
            assert_eq!(stats.inflight, 0);
            assert_eq!(
                stats.accepted,
                stats.completed
                    + stats.degraded
                    + stats.budget_exhausted
                    + stats.cancelled
                    + stats.failed
            );
        }
        other => panic!("unexpected drain reply: {other:?}"),
    }
    server.wait();
}

#[test]
fn deadline_cancels_and_identical_resubmit_resumes() {
    let server = PbServer::start(ServerConfig::default()).expect("server starts");
    let mut c = PbClient::connect(server.addr()).expect("connect");

    // Deadline 0: the token is tripped before the driver's first grant.
    let cancelled = Request::Submit {
        tenant: "t".into(),
        workload: "EQ_1D".into(),
        fractions: vec![0.8],
        optimized: false,
        resume: true,
        deadline_ms: Some(0),
    };
    let id = c.submit(&cancelled).unwrap().expect("accepted");
    let r = wait_done(&mut c, id);
    assert_eq!(r.outcome, "cancelled");

    // An uninterrupted reference run of the same submission (fresh tenant so
    // budgets do not interact; caps are infinite here anyway).
    let reference = Request::Submit {
        tenant: "ref".into(),
        workload: "EQ_1D".into(),
        fractions: vec![0.8],
        optimized: false,
        resume: false,
        deadline_ms: None,
    };
    let rid = c.submit(&reference).unwrap().expect("accepted");
    let rref = wait_done(&mut c, rid);
    assert_eq!(rref.outcome, "completed");

    // Resubmit the cancelled request without a deadline: same outcome bits,
    // and spent + reused equals the uninterrupted (restart) cost.
    let resub = Request::Submit {
        tenant: "t".into(),
        workload: "EQ_1D".into(),
        fractions: vec![0.8],
        optimized: false,
        resume: true,
        deadline_ms: None,
    };
    let id2 = c.submit(&resub).unwrap().expect("accepted");
    let r2 = wait_done(&mut c, id2);
    assert_eq!(r2.outcome, "completed");
    assert_eq!(r2.final_plan, rref.final_plan, "resume changed the result");
    let restart = rref.total_cost;
    let paid_plus_reused = r2.total_cost + r2.reused_cost;
    assert!(
        (paid_plus_reused - restart).abs() <= 1e-9 * restart,
        "spent+reused {paid_plus_reused} != restart cost {restart}"
    );
    server.stop();
}

#[test]
fn tenant_budgets_degrade_only_their_owner() {
    let cfg = ServerConfig {
        tenant_cap: 1.0, // far below any completion cost
        ..ServerConfig::default()
    };
    let server = PbServer::start(cfg).expect("server starts");
    let mut c = PbClient::connect(server.addr()).expect("connect");

    let id_poor = c
        .submit(&submit_req("poor", 0.6))
        .unwrap()
        .expect("accepted");
    let r_poor = wait_done(&mut c, id_poor);
    assert!(
        r_poor.outcome == "budget-exhausted" || r_poor.outcome == "degraded",
        "capped tenant got {}",
        r_poor.outcome
    );
    assert!(
        r_poor.total_cost <= 1.0 + 1e-9,
        "cap exceeded: {}",
        r_poor.total_cost
    );

    let stats = server.stop();
    for (tenant, spent, cap) in &stats.tenants {
        assert!(
            spent <= &(cap * (1.0 + 1e-9)),
            "{tenant} over cap: {spent} > {cap}"
        );
    }
}

#[test]
fn worker_panic_is_contained_and_worker_replaced() {
    let cfg = ServerConfig {
        workers: 1, // the single worker must be replaced for later requests
        faults: FaultPlan::new(7).with(FaultKind::WorkerPanic, Trigger::Nth(1)),
        ..ServerConfig::default()
    };
    let server = PbServer::start(cfg).expect("server starts");
    let mut c = PbClient::connect(server.addr()).expect("connect");

    let id1 = c.submit(&submit_req("a", 0.5)).unwrap().expect("accepted");
    let r1 = wait_done(&mut c, id1);
    assert_eq!(r1.outcome, "failed");
    assert!(r1.error.unwrap().contains("panicked"));

    // The server survived and a fresh worker serves the next request.
    let id2 = c.submit(&submit_req("a", 0.5)).unwrap().expect("accepted");
    let r2 = wait_done(&mut c, id2);
    assert_eq!(r2.outcome, "completed");

    let stats = server.stop();
    assert_eq!(stats.worker_panics, 1);
    assert!(stats.workers_replaced >= 1);
}

#[test]
fn full_queue_rejects_with_backpressure() {
    let cfg = ServerConfig {
        workers: 1,
        queue_cap: 1,
        // Stall dispatch so submissions pile into the bounded queue.
        faults: FaultPlan::new(3).with(FaultKind::QueueStall { ms: 300 }, Trigger::Every(1)),
        ..ServerConfig::default()
    };
    let server = PbServer::start(cfg).expect("server starts");
    let mut c = PbClient::connect(server.addr()).expect("connect");

    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..8 {
        match c.submit(&submit_req("t", 0.4)).unwrap() {
            Ok(id) => accepted.push(id),
            Err(Response::Rejected { retry_after_ms, .. }) => {
                assert!(retry_after_ms > 0);
                rejected += 1;
            }
            Err(other) => panic!("unexpected: {other:?}"),
        }
    }
    assert!(rejected > 0, "bounded queue never shed load");
    for id in accepted {
        let _ = wait_done(&mut c, id); // every accepted request is answered
    }
    let stats = server.stop();
    assert_eq!(stats.rejected as usize, rejected);
}
