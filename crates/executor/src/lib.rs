//! Cost-limited execution simulation with selectivity learning.
//!
//! The paper's run-time machinery needs three engine features (Section 5.4):
//! cost-limited partial execution of plans, spill-mode execution (break the
//! pipeline above the first error node and discard its output), and
//! selectivity monitoring through node tuple counters. This crate simulates
//! all three in optimizer cost units:
//!
//! * A plan's **actual** execution cost at the true location `qa` is its
//!   modeled cost, optionally perturbed by a bounded model-error factor
//!   (`δ`-framework of Section 3.4).
//! * A **budgeted execution** completes iff the actual cost fits the budget;
//!   otherwise it is aborted having consumed exactly the budget.
//! * An aborted execution still *teaches*: the tuple counter at the first
//!   unresolved error node implies a selectivity lower bound. We model
//!   execution progress as budget-proportional past the error node's input
//!   cost, which preserves the two properties the paper's analysis needs —
//!   the learned value never exceeds the true selectivity (first-quadrant
//!   invariant, Section 5.2) and spilled executions learn at least as fast
//!   as unspilled ones (the motivation for spilling, Section 5.3).
//!
//! The sibling `pb-engine` crate implements the same contract over real
//! tuples; integration tests check the two agree on completion decisions.

pub mod executor;

pub use executor::{learnable_node, CostResumeBook, ExecOutcome, Executor, RunResult};
