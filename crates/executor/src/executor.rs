//! Budgeted plan execution in cost units.

use pb_cost::{CostPerturbation, CostProgram, Coster, NodeCost};
use pb_faults::{FaultInjector, PbError};
use pb_plan::{DimId, PlanFingerprint, PlanNode, QuerySpec, RelIdx};

/// Outcome of a plain cost-limited execution (basic bouquet driver).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// The plan finished within the budget; `cost` is what it consumed.
    Completed { cost: f64 },
    /// The budget was exhausted first; exactly `spent == budget` was wasted.
    Aborted { spent: f64 },
    /// The execution died mid-flight (injected or real operator fault) after
    /// consuming `spent` units. Unlike an abort, the budget was not the
    /// limiting factor and nothing was learned.
    Failed { spent: f64, error: PbError },
}

impl ExecOutcome {
    pub fn spent(&self) -> f64 {
        match self {
            ExecOutcome::Completed { cost } => *cost,
            ExecOutcome::Aborted { spent } | ExecOutcome::Failed { spent, .. } => *spent,
        }
    }

    pub fn completed(&self) -> bool {
        matches!(self, ExecOutcome::Completed { .. })
    }

    pub fn error(&self) -> Option<&PbError> {
        match self {
            ExecOutcome::Failed { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Outcome of an execution that also monitors selectivities (optimized
/// bouquet driver, Sections 5.2–5.3).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The query finished (only possible for unspilled executions).
    pub completed: bool,
    /// Cost units actually consumed (≤ budget).
    pub spent: f64,
    /// Updated lower bound for one dimension, if an unresolved error node
    /// was observed: `(dim, new_lower_bound)`.
    pub learned: Option<(DimId, f64)>,
    /// Dimensions whose error node consumed its entire input — their true
    /// selectivity is now exactly known.
    pub resolved: Vec<DimId>,
    /// Set when the execution died on a fault rather than completing or
    /// exhausting the budget; `spent` still reflects the work wasted.
    pub error: Option<PbError>,
}

/// Find the first node, in execution (post)order, that applies at least one
/// error dimension not yet in `resolved`. Because the traversal is
/// post-order, no unresolved dimension is applied below the returned node,
/// so its input cardinalities are fully known — the precondition for
/// learning a selectivity lower bound from its tuple counter (Section 5.2).
///
/// Returns `(node, dims_applied_here)`.
pub fn learnable_node<'p>(
    plan: &'p PlanNode,
    query: &QuerySpec,
    resolved: &[bool],
) -> Option<(&'p PlanNode, Vec<DimId>)> {
    for child in plan.children() {
        if let Some(hit) = learnable_node(child, query, resolved) {
            return Some(hit);
        }
    }
    let mut dims: Vec<DimId> = Vec::new();
    for &e in plan.edges() {
        if let Some(d) = query.joins[e].selectivity.error_dim() {
            if !resolved[d] && !dims.contains(&d) {
                dims.push(d);
            }
        }
    }
    let scan_rel: Option<RelIdx> = match plan {
        PlanNode::SeqScan { rel }
        | PlanNode::IndexScan { rel, .. }
        | PlanNode::FullIndexScan { rel, .. } => Some(*rel),
        PlanNode::IndexNLJoin { inner_rel, .. } => Some(*inner_rel),
        _ => None,
    };
    if let Some(rel) = scan_rel {
        for s in &query.relations[rel].selections {
            if let Some(d) = s.selectivity.error_dim() {
                if !resolved[d] && !dims.contains(&d) {
                    dims.push(d);
                }
            }
        }
    }
    if dims.is_empty() {
        None
    } else {
        Some((plan, dims))
    }
}

/// Cost-unit execution simulator bound to (catalog, query, cost model) via a
/// [`Coster`], with an optional bounded model-error perturbation and an
/// optional fault injector (inert by default — with [`FaultInjector::none`]
/// every outcome is bit-identical to the hook-free code).
pub struct Executor<'a> {
    pub coster: Coster<'a>,
    pub perturb: CostPerturbation,
    pub faults: FaultInjector,
}

impl<'a> Executor<'a> {
    pub fn new(coster: Coster<'a>) -> Self {
        Executor {
            coster,
            perturb: CostPerturbation::none(),
            faults: FaultInjector::none(),
        }
    }

    pub fn with_perturbation(coster: Coster<'a>, perturb: CostPerturbation) -> Self {
        Executor {
            coster,
            perturb,
            faults: FaultInjector::none(),
        }
    }

    /// Arm a fault injector (chaos campaigns, robustness drivers).
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// The actual run-time cost of executing `plan` to completion at the
    /// true location `qa` (modeled cost × bounded model-error factor; an
    /// armed injector may additionally spike the cost beyond the δ band).
    pub fn actual_cost(&self, plan: &PlanNode, qa: &[f64]) -> f64 {
        let modeled = self.coster.plan_cost(plan, qa);
        let actual = self.perturb.actual_cost(plan.fingerprint(), qa, modeled);
        if self.faults.is_active() {
            actual * self.faults.spike_factor()
        } else {
            actual
        }
    }

    /// Shared budget logic: fault checks (operator failure, clock skew,
    /// abort over-charge) happen here and only here, so the plain and
    /// compiled paths stay interchangeable.
    fn budgeted(&self, cost: f64, budget: f64, site: &str) -> ExecOutcome {
        if !self.faults.is_active() {
            return if cost <= budget {
                ExecOutcome::Completed { cost }
            } else {
                ExecOutcome::Aborted { spent: budget }
            };
        }
        if let Some((frac, error)) = self.faults.exec_failure(site) {
            // Died after a fraction of the work it would have done (bounded
            // by the budget when finite, so the spend is always chargeable).
            let bound = if budget.is_finite() {
                budget.min(cost)
            } else {
                cost
            };
            return ExecOutcome::Failed {
                spent: bound * frac,
                error,
            };
        }
        // Clock skew only makes sense for finite budgets (∞ × 0 is NaN).
        let effective = if budget.is_finite() {
            self.faults.skewed_budget(budget)
        } else {
            budget
        };
        if cost <= effective {
            ExecOutcome::Completed { cost }
        } else {
            ExecOutcome::Aborted {
                spent: effective * self.faults.abort_charge_factor(),
            }
        }
    }

    /// Plain cost-limited execution (the basic driver's primitive).
    pub fn execute(&self, plan: &PlanNode, qa: &[f64], budget: f64) -> ExecOutcome {
        let cost = self.actual_cost(plan, qa);
        self.budgeted(cost, budget, "executor:execute")
    }

    /// [`actual_cost`](Executor::actual_cost) via a compiled program. The
    /// program's modeled cost is bit-identical to the tree walk's, so the
    /// two paths are interchangeable. `fp` must be the fingerprint of the
    /// plan the program was compiled from (the model-error perturbation
    /// keys off it); `stack` is reusable evaluation scratch.
    pub fn actual_cost_compiled(
        &self,
        prog: &CostProgram,
        fp: PlanFingerprint,
        qa: &[f64],
        stack: &mut Vec<NodeCost>,
    ) -> f64 {
        let modeled = prog.eval_with(qa, stack).cost;
        let actual = self.perturb.actual_cost(fp, qa, modeled);
        if self.faults.is_active() {
            actual * self.faults.spike_factor()
        } else {
            actual
        }
    }

    /// [`execute`](Executor::execute) via a compiled program — the basic
    /// driver's hot path, which re-costs whole pool plans once per budget
    /// probe.
    pub fn execute_compiled(
        &self,
        prog: &CostProgram,
        fp: PlanFingerprint,
        qa: &[f64],
        budget: f64,
        stack: &mut Vec<NodeCost>,
    ) -> ExecOutcome {
        let cost = self.actual_cost_compiled(prog, fp, qa, stack);
        self.budgeted(cost, budget, "executor:execute-compiled")
    }

    /// Cost-limited execution with selectivity monitoring.
    ///
    /// With `spilled == true` the pipeline is broken immediately above the
    /// first unresolved error node (Section 5.3): the entire budget goes to
    /// that node's subtree and the query can never complete here. With
    /// `spilled == false` the full plan runs and may complete the query.
    ///
    /// Learning model: let `E` be the first unresolved error node, `C_in`
    /// the (known) cost of `E`'s inputs and `C_exec` the cost of the
    /// executed tree (spilled prefix or full plan). A budget `B < C_exec`
    /// drives `E` through a fraction `(B − C_in)/(C_exec − C_in)` of its
    /// input, so its tuple counter certifies a selectivity lower bound of
    /// that fraction × the true value. The fraction is capped at 1, which
    /// guarantees the first-quadrant invariant.
    pub fn execute_monitored(
        &self,
        plan: &PlanNode,
        qa: &[f64],
        resolved: &[bool],
        budget: f64,
        spilled: bool,
    ) -> RunResult {
        if self.faults.is_active() {
            if spilled {
                if let Some(error) = self.faults.spill_failure("executor:spill") {
                    // The pipeline break itself failed before any real work;
                    // the driver decides whether to retry unspilled.
                    return RunResult {
                        completed: false,
                        spent: 0.0,
                        learned: None,
                        resolved: Vec::new(),
                        error: Some(error),
                    };
                }
            }
            if let Some((frac, error)) = self.faults.exec_failure("executor:monitored") {
                let spent = if budget.is_finite() {
                    budget * frac
                } else {
                    0.0
                };
                return RunResult {
                    completed: false,
                    spent,
                    learned: None,
                    resolved: Vec::new(),
                    error: Some(error),
                };
            }
        }
        let budget = if budget.is_finite() {
            self.faults.skewed_budget(budget)
        } else {
            budget
        };
        let learnable = learnable_node(plan, self.coster.query, resolved);
        let Some((node, dims)) = learnable else {
            // No unresolved error dimension in this plan: pure completion
            // attempt; nothing to learn on abort.
            let cost = self.actual_cost(plan, qa);
            return if cost <= budget {
                RunResult {
                    completed: true,
                    spent: cost,
                    learned: None,
                    resolved: Vec::new(),
                    error: None,
                }
            } else {
                RunResult {
                    completed: false,
                    spent: budget * self.faults.abort_charge_factor(),
                    learned: None,
                    resolved: Vec::new(),
                    error: None,
                }
            };
        };

        // Cost of the executed tree.
        let exec_tree_cost = if spilled {
            // Subtree rooted at the error node, output discarded.
            let sub = self.coster.cost(node, qa);
            self.perturb
                .actual_cost(node.fingerprint(), qa, self.coster.spill(&sub).cost)
        } else {
            self.actual_cost(plan, qa)
        };
        // Cost of the error node's inputs — fully known to the driver since
        // no unresolved dimension occurs below the node.
        let input_cost: f64 = node
            .children()
            .iter()
            .map(|c| self.actual_cost(c, qa))
            .sum();

        let dim = dims[0];
        if exec_tree_cost <= budget {
            if spilled {
                // Prefix completed: all dims applied at this node resolve.
                RunResult {
                    completed: false,
                    spent: exec_tree_cost,
                    learned: Some((dim, self.faults.corrupt_observation(qa[dim]))),
                    resolved: dims,
                    error: None,
                }
            } else {
                RunResult {
                    completed: true,
                    spent: exec_tree_cost,
                    learned: Some((dim, self.faults.corrupt_observation(qa[dim]))),
                    resolved: dims,
                    error: None,
                }
            }
        } else {
            let denom = (exec_tree_cost - input_cost).max(f64::MIN_POSITIVE);
            let frac = ((budget - input_cost) / denom).clamp(0.0, 1.0);
            RunResult {
                completed: false,
                spent: budget * self.faults.abort_charge_factor(),
                learned: (frac > 0.0)
                    .then_some((dim, self.faults.corrupt_observation(frac * qa[dim]))),
                resolved: Vec::new(),
                error: None,
            }
        }
    }
}

/// Closed-form checkpoint book for the cost-unit simulator — the
/// [`Executor`]'s side of the substrate checkpoint/resume contract.
///
/// The engine checkpoints a plan's completed operator prefix at batch
/// boundaries; the simulator mirrors that with arithmetic. A plan's
/// checkpointable prefixes are the subtrees along its first-executed chain
/// ([`PlanNode::exec_chain`]): a budget-limited run completes exactly the
/// chain subtrees whose standalone actual cost fits the spend. The book
/// records those completed subtrees by structural fingerprint; a later
/// execution — the same plan at the next contour budget, or a different
/// plan sharing a join-subtree prefix — is credited the largest recorded
/// prefix on its own chain and pays only the un-executed suffix.
///
/// Every stored cost is validated bit-for-bit against a recomputation at
/// use time (the simulator analogue of a checkpoint checksum): a corrupted
/// entry yields no credit, so the execution falls back to full restart
/// charging — never a double charge, never a changed observation.
#[derive(Debug, Clone, Default)]
pub struct CostResumeBook {
    /// Completed chain-subtree fingerprint → standalone actual cost.
    done: std::collections::BTreeMap<u64, f64>,
    /// Last-use tick per fingerprint, for LRU eviction under the cap.
    stamps: std::collections::BTreeMap<u64, u64>,
    tick: u64,
    /// Maximum retained entries (derived from a byte cap); `0` = unbounded.
    entry_cap: usize,
    evictions: u64,
}

/// Approximate heap footprint of one entry: fingerprint + cost + stamp in
/// two B-tree maps, with per-node overhead charged flatly.
const COST_ENTRY_BYTES: usize = 48;

impl CostResumeBook {
    pub fn new() -> Self {
        Self::default()
    }

    /// A book bounded to roughly `cap` bytes of retained checkpoints
    /// (entries are fixed-size, so the cap divides down to an entry count),
    /// evicting least-recently-used entries when exceeded. Eviction only
    /// ever costs re-execution: a missing entry yields no credit, which is
    /// exactly restart semantics.
    pub fn with_byte_cap(cap: usize) -> Self {
        CostResumeBook {
            entry_cap: cap / COST_ENTRY_BYTES,
            ..Self::default()
        }
    }

    /// Set or change the byte cap (`0` = unbounded); evicts immediately if
    /// the current contents exceed the new cap.
    pub fn set_byte_cap(&mut self, cap: usize) {
        self.entry_cap = cap / COST_ENTRY_BYTES;
        self.evict_over_cap();
    }

    /// Entries evicted to stay under the cap so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn evict_over_cap(&mut self) {
        if self.entry_cap == 0 {
            return;
        }
        while self.done.len() > self.entry_cap {
            let Some((&lru, _)) = self.stamps.iter().min_by_key(|(_, &t)| t) else {
                break;
            };
            self.done.remove(&lru);
            self.stamps.remove(&lru);
            self.evictions += 1;
        }
    }

    /// Number of recorded checkpoints.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Largest recorded-and-valid prefix credit on `root`'s first-executed
    /// chain, in cost units at the true location `qa`. Entries whose stored
    /// cost does not reproduce bit-identically are ignored (checksum
    /// failure → restart semantics).
    pub fn credit(&mut self, ex: &Executor<'_>, root: &PlanNode, qa: &[f64]) -> f64 {
        let mut credit = 0.0;
        for sub in root.exec_chain() {
            let fp = sub.fingerprint().0;
            if let Some(&stored) = self.done.get(&fp) {
                let cost = ex.actual_cost(sub, qa);
                if stored.to_bits() == cost.to_bits() {
                    self.tick += 1;
                    self.stamps.insert(fp, self.tick);
                    if cost > credit {
                        credit = cost;
                    }
                }
            }
        }
        credit
    }

    /// Record the prefixes completed by an execution of `root` that spent
    /// `spent` cost units (`completed` marks a full completion, which
    /// checkpoints the entire chain regardless of the spend bookkeeping).
    pub fn record(
        &mut self,
        ex: &Executor<'_>,
        root: &PlanNode,
        qa: &[f64],
        spent: f64,
        completed: bool,
    ) {
        for sub in root.exec_chain() {
            let cost = ex.actual_cost(sub, qa);
            if completed || cost <= spent {
                let fp = sub.fingerprint().0;
                self.done.insert(fp, cost);
                self.tick += 1;
                self.stamps.insert(fp, self.tick);
            }
        }
        self.evict_over_cap();
    }

    /// Chaos hook: corrupt every stored checkpoint. Subsequent credit
    /// lookups fail their bit-identity validation and fall back to restart
    /// charging.
    pub fn corrupt_all(&mut self) {
        for v in self.done.values_mut() {
            *v = f64::from_bits(v.to_bits() ^ 1) + 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_cost::CostModel;
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn setup() -> (pb_catalog::Catalog, QuerySpec, CostModel) {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "eq2d");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        (cat.clone(), qb.build(), CostModel::postgresish())
    }

    fn sample_plan() -> PlanNode {
        PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::HashJoin {
                build: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
                probe: Box::new(PlanNode::SeqScan { rel: 1 }),
                edges: vec![0],
            }),
            inner_rel: 2,
            edges: vec![1],
        }
    }

    #[test]
    fn execute_completes_iff_cost_fits() {
        let (cat, q, m) = setup();
        let ex = Executor::new(Coster::new(&cat, &q, &m));
        let qa = [0.01, 1e-6];
        let cost = ex.actual_cost(&sample_plan(), &qa);
        assert!(ex.execute(&sample_plan(), &qa, cost * 1.01).completed());
        let aborted = ex.execute(&sample_plan(), &qa, cost * 0.5);
        assert!(!aborted.completed());
        assert_eq!(aborted.spent(), cost * 0.5);
    }

    #[test]
    fn compiled_execution_matches_tree_walk_bitwise() {
        let (cat, q, m) = setup();
        let noisy = Executor::with_perturbation(
            Coster::new(&cat, &q, &m),
            CostPerturbation::with_delta(0.4, 7),
        );
        let plan = sample_plan();
        let prog = CostProgram::compile(&cat, &q, &m, &plan);
        let fp = plan.fingerprint();
        let mut stack = Vec::new();
        for qa in [[0.01, 1e-6], [0.05, 2e-6], [1.0, 5e-6]] {
            let walked = noisy.actual_cost(&plan, &qa);
            let compiled = noisy.actual_cost_compiled(&prog, fp, &qa, &mut stack);
            assert_eq!(walked.to_bits(), compiled.to_bits());
            for budget in [walked * 0.5, walked, walked * 2.0] {
                assert_eq!(
                    noisy.execute(&plan, &qa, budget),
                    noisy.execute_compiled(&prog, fp, &qa, budget, &mut stack)
                );
            }
        }
    }

    #[test]
    fn learnable_node_finds_deepest_unresolved() {
        let (_, q, _) = setup();
        let plan = sample_plan();
        // Nothing resolved: the IndexScan leaf (dim 0) comes first.
        let (node, dims) = learnable_node(&plan, &q, &[false, false]).unwrap();
        assert!(matches!(node, PlanNode::IndexScan { rel: 0, .. }));
        assert_eq!(dims, vec![0]);
        // Dim 0 resolved: the hash join (dim 1) is next.
        let (node, dims) = learnable_node(&plan, &q, &[true, false]).unwrap();
        assert!(matches!(node, PlanNode::HashJoin { .. }));
        assert_eq!(dims, vec![1]);
        // Everything resolved: no error nodes.
        assert!(learnable_node(&plan, &q, &[true, true]).is_none());
    }

    #[test]
    fn monitored_learning_respects_first_quadrant() {
        let (cat, q, m) = setup();
        let ex = Executor::new(Coster::new(&cat, &q, &m));
        let qa = [0.05, 2e-6];
        let plan = sample_plan();
        for budget_frac in [0.01, 0.1, 0.5, 0.9] {
            let full = ex.actual_cost(&plan, &qa);
            let r = ex.execute_monitored(&plan, &qa, &[false, false], full * budget_frac, false);
            assert!(!r.completed);
            if let Some((d, v)) = r.learned {
                assert_eq!(d, 0);
                assert!(v <= qa[0] * (1.0 + 1e-12), "learned {v} > true {}", qa[0]);
                assert!(v >= 0.0);
            }
        }
    }

    #[test]
    fn spilled_learns_at_least_as_fast_as_unspilled() {
        let (cat, q, m) = setup();
        let ex = Executor::new(Coster::new(&cat, &q, &m));
        let qa = [0.05, 2e-6];
        let plan = sample_plan();
        let budget = ex.actual_cost(&plan, &qa) * 0.2;
        let spilled = ex.execute_monitored(&plan, &qa, &[false, false], budget, true);
        let unspilled = ex.execute_monitored(&plan, &qa, &[false, false], budget, false);
        let lv = |r: &RunResult| r.learned.map(|(_, v)| v).unwrap_or(0.0);
        assert!(
            lv(&spilled) >= lv(&unspilled) - 1e-15,
            "spilled {} < unspilled {}",
            lv(&spilled),
            lv(&unspilled)
        );
    }

    #[test]
    fn spilled_prefix_completion_resolves_dim_without_completing_query() {
        let (cat, q, m) = setup();
        let ex = Executor::new(Coster::new(&cat, &q, &m));
        let qa = [0.05, 2e-6];
        let plan = sample_plan();
        // Huge budget: the spilled prefix (IndexScan on part) completes.
        let r = ex.execute_monitored(&plan, &qa, &[false, false], 1e12, true);
        assert!(!r.completed);
        assert_eq!(r.resolved, vec![0]);
        assert_eq!(r.learned, Some((0, qa[0])));
        assert!(r.spent < 1e12);
    }

    #[test]
    fn unspilled_with_huge_budget_completes_and_resolves() {
        let (cat, q, m) = setup();
        let ex = Executor::new(Coster::new(&cat, &q, &m));
        let qa = [0.05, 2e-6];
        let r = ex.execute_monitored(&sample_plan(), &qa, &[false, false], 1e12, false);
        assert!(r.completed);
        assert_eq!(r.resolved, vec![0]);
    }

    #[test]
    fn fully_resolved_plan_is_pure_completion_attempt() {
        let (cat, q, m) = setup();
        let ex = Executor::new(Coster::new(&cat, &q, &m));
        let qa = [0.05, 2e-6];
        let plan = sample_plan();
        let cost = ex.actual_cost(&plan, &qa);
        let r = ex.execute_monitored(&plan, &qa, &[true, true], cost * 0.5, false);
        assert!(!r.completed);
        assert!(r.learned.is_none());
        assert_eq!(r.spent, cost * 0.5);
    }

    #[test]
    fn resume_book_credits_recorded_prefixes_and_rejects_corruption() {
        let (cat, q, m) = setup();
        let ex = Executor::new(Coster::new(&cat, &q, &m));
        let qa = [0.05, 2e-6];
        let plan = sample_plan();
        let chain = plan.exec_chain();
        let leaf_cost = ex.actual_cost(chain[0], &qa);
        let mid_cost = ex.actual_cost(chain[1], &qa);

        let mut book = CostResumeBook::new();
        assert_eq!(book.credit(&ex, &plan, &qa), 0.0);
        // An abort that spent enough for the leaf but not the hash join
        // checkpoints only the leaf.
        book.record(&ex, &plan, &qa, (leaf_cost + mid_cost) / 2.0, false);
        assert_eq!(book.credit(&ex, &plan, &qa).to_bits(), leaf_cost.to_bits());
        // A deeper abort checkpoints the join prefix too.
        book.record(&ex, &plan, &qa, mid_cost * 1.01, false);
        assert_eq!(book.credit(&ex, &plan, &qa).to_bits(), mid_cost.to_bits());
        // A different plan sharing the hash-join prefix grafts the same
        // credit.
        let other = PlanNode::SortMergeJoin {
            left: Box::new(chain[1].clone()),
            right: Box::new(PlanNode::SeqScan { rel: 2 }),
            edges: vec![1],
            sort_left: true,
            sort_right: true,
        };
        assert_eq!(book.credit(&ex, &other, &qa).to_bits(), mid_cost.to_bits());
        // Corrupt checkpoints yield zero credit (restart fallback).
        book.corrupt_all();
        assert_eq!(book.credit(&ex, &plan, &qa), 0.0);
        // Re-recording heals the book.
        book.record(&ex, &plan, &qa, ex.actual_cost(&plan, &qa), true);
        assert_eq!(
            book.credit(&ex, &plan, &qa).to_bits(),
            ex.actual_cost(&plan, &qa).to_bits()
        );
    }

    #[test]
    fn model_error_perturbation_changes_actual_cost_within_band() {
        let (cat, q, m) = setup();
        let coster = Coster::new(&cat, &q, &m);
        let plain = Executor::new(coster);
        let noisy = Executor::with_perturbation(coster, CostPerturbation::with_delta(0.4, 99));
        let qa = [0.05, 2e-6];
        let c0 = plain.actual_cost(&sample_plan(), &qa);
        let c1 = noisy.actual_cost(&sample_plan(), &qa);
        assert!(c1 >= c0 / 1.4 - 1e-9 && c1 <= c0 * 1.4 + 1e-9);
    }
}
