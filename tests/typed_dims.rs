//! Typed-dimension migration properties.
//!
//! The `DimKind` refactor re-expressed every legacy workload's ESS axes
//! through the typed constructors (`EssDim::selection` /
//! `EssDim::pk_fk_join`). The kind tag must be pure metadata for those two
//! kinds: re-declaring the same workload with the untyped legacy
//! constructor (`EssDim::new`) must produce **byte-identical** plan
//! diagrams, cost matrices, contours and driver runs. And on the new kinds
//! (inequality-join, anti-join), the engine substrate's per-kind observed
//! selectivities must agree with the data-measured true location the
//! simulator is driven at — same ladder decisions, same resolved
//! coordinates.

use std::sync::OnceLock;

use plan_bouquet::bouquet::{
    measure_qa, Bouquet, BouquetConfig, EngineSubstrate, ExecutionSubstrate, Workload,
};
use plan_bouquet::cost::{Ess, EssDim};
use plan_bouquet::engine::Database;
use plan_bouquet::faults::FaultInjector;
use plan_bouquet::workloads;
use proptest::prelude::*;

/// The same workload with every axis demoted to the untyped legacy
/// constructor (kind defaults to `Selection`), ranges and resolutions
/// untouched.
fn untyped(w: &Workload) -> Workload {
    let dims = w
        .ess
        .dims
        .iter()
        .map(|d| EssDim::new(d.name.clone(), d.lo, d.hi))
        .collect();
    Workload::new(
        w.name.clone(),
        w.catalog.clone(),
        w.query.clone(),
        Ess::new(dims, w.ess.res.clone()),
        w.model.clone(),
    )
}

/// Identification artifacts that must not change under re-kinding,
/// compared modulo the kind tag itself: the serialized diagram embeds the
/// ESS (whose `kind` fields differ by construction), so the tags are
/// canonicalized before the byte comparison — everything else must match
/// exactly.
fn identity_artifacts(b: &Bouquet) -> String {
    let raw = format!(
        "{}\n{}\n{}\n{}",
        serde_json::to_string(&b.diagram).unwrap(),
        serde_json::to_string(&b.costs).unwrap(),
        serde_json::to_string(&b.grading).unwrap(),
        serde_json::to_string(&b.contours).unwrap()
    );
    raw.replace("\"kind\":\"PkFkJoin\"", "\"kind\":\"Selection\"")
}

fn migration_pairs() -> &'static Vec<(Bouquet, Bouquet)> {
    static P: OnceLock<Vec<(Bouquet, Bouquet)>> = OnceLock::new();
    P.get_or_init(|| {
        [
            workloads::eq_1d(),
            workloads::h_q8a_2d(0.01),
            workloads::ds_q15_3d(),
        ]
        .iter()
        .map(|w| {
            let typed = Bouquet::identify(w, &BouquetConfig::default()).unwrap();
            let legacy = Bouquet::identify(&untyped(w), &BouquetConfig::default()).unwrap();
            (typed, legacy)
        })
        .collect()
    })
}

#[test]
fn typed_migration_identifies_byte_identically() {
    for (typed, legacy) in migration_pairs() {
        assert_eq!(
            identity_artifacts(typed),
            identity_artifacts(legacy),
            "{}: typed re-declaration changed identification artifacts",
            typed.workload.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Driver byte-identity at arbitrary (off-grid) true locations: the
    /// basic and optimized runs of the typed and untyped declarations
    /// serialize to the same bytes.
    #[test]
    fn typed_migration_runs_byte_identically(fx in 0.0f64..=1.0, fy in 0.0f64..=1.0, fz in 0.0f64..=1.0) {
        let fracs = [fx, fy, fz];
        for (typed, legacy) in migration_pairs() {
            let d = typed.workload.ess.d();
            let qa = typed.workload.ess.point_at_fractions(&fracs[..d]);
            for optimized in [false, true] {
                let run = |b: &Bouquet| {
                    if optimized { b.run_optimized(&qa) } else { b.run_basic(&qa) }
                };
                let t = run(typed).unwrap();
                let l = run(legacy).unwrap();
                prop_assert_eq!(
                    serde_json::to_string(&t).unwrap(),
                    serde_json::to_string(&l).unwrap(),
                    "{}: {} driver diverged at {:?}",
                    &typed.workload.name,
                    if optimized { "optimized" } else { "basic" },
                    &qa
                );
            }
        }
    }
}

fn hostile_bouquets() -> &'static Vec<Bouquet> {
    static B: OnceLock<Vec<Bouquet>> = OnceLock::new();
    B.get_or_init(|| {
        [
            workloads::hostile_ineq_2d(0.003),
            workloads::hostile_anti_2d(0.003),
        ]
        .iter()
        .map(|w| Bouquet::identify(w, &BouquetConfig::default()).unwrap())
        .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Engine-vs-simulator agreement on the new dimension kinds, across
    /// regenerated databases: the engine substrate's per-kind observations
    /// (inequality pair density; flipped anti-join match density) must
    /// steer the basic driver through exactly the contour/plan/budget
    /// ladder the simulator takes at the data-measured true location, and
    /// an unbudgeted monitored execution must resolve every axis to that
    /// measured coordinate.
    #[test]
    fn engine_observations_agree_with_simulator_on_new_kinds(seed in 0u64..64) {
        for b in hostile_bouquets() {
            let w = &b.workload;
            let db = Database::generate(&w.catalog, seed.wrapping_mul(0x9E37_79B9).wrapping_add(1), &[])
                .unwrap();
            let qa = measure_qa(&db, &w.query, &w.ess).unwrap();

            // Ladder agreement.
            let mut sub = EngineSubstrate::new(b, &db, FaultInjector::none());
            let engine_run = b.run_basic_on(&mut sub).unwrap();
            let sim_run = b.run_basic(&qa).unwrap();
            let seq = |r: &plan_bouquet::bouquet::BouquetRun| -> Vec<(usize, usize, f64)> {
                r.trace.iter().map(|e| (e.contour, e.plan, e.budget)).collect()
            };
            prop_assert!(engine_run.completed(), "{}: engine run incomplete", &w.name);
            prop_assert_eq!(
                seq(&engine_run),
                seq(&sim_run),
                "{}: engine ladder diverged from simulator at measured qa {:?}",
                &w.name,
                &qa
            );

            // Observed-coordinate agreement, one axis at a time: an
            // unbudgeted *spilled* execution runs the deepest unresolved
            // error node's prefix to completion, so its final counter is
            // the site's exact selectivity. What "agreement" means is
            // kind-specific:
            //
            // * Selection — the scan's counter over its base cardinality is
            //   the measured selectivity exactly.
            // * AntiJoin — the survivor-complement density matches the
            //   data-measured ≥1-match density up to the sampling skew the
            //   upstream pipeline's filtering introduces (a few percent);
            //   zero survivors legitimately yield no finite bound.
            // * InequalityJoin — the deepest site's prefix includes the
            //   error-prone selection scan, so the counter conflates the
            //   two axes: the resolved value is the *product* of the
            //   measured coordinates — a conservative in-ESS lower bound,
            //   never an overestimate.
            let d = w.ess.d();
            let pid = b.contours.last().unwrap().plan_set[0];
            for dm in 0..d {
                let mut resolved = vec![true; d];
                resolved[dm] = false;
                let mut sub = EngineSubstrate::new(b, &db, FaultInjector::none());
                let out = sub.execute_monitored(pid, &resolved, f64::INFINITY, true);
                prop_assert!(out.error.is_none(), "{}: spill failed", &w.name);
                use plan_bouquet::cost::DimKind;
                let kind = w.ess.dims[dm].kind;
                if out.resolved.is_empty() {
                    // Only the anti axis may fail to bound (no survivors).
                    prop_assert_eq!(
                        kind,
                        DimKind::AntiJoin,
                        "{}: dim {} prefix did not resolve",
                        &w.name,
                        dm
                    );
                    continue;
                }
                let (odm, v) = out.resolved[0];
                prop_assert_eq!(odm, dm);
                let expect = qa.0[dm];
                prop_assert!(
                    v >= w.ess.dims[dm].lo && v <= w.ess.dims[dm].hi,
                    "{}: dim {} resolved outside the ESS: {}",
                    &w.name, dm, v
                );
                match kind {
                    DimKind::Selection => prop_assert!(
                        (v - expect).abs() <= 1e-9 * expect.abs().max(1e-12),
                        "{}: selection dim {} resolved to {} but data measures {}",
                        &w.name, dm, v, expect
                    ),
                    DimKind::AntiJoin => prop_assert!(
                        (v - expect).abs() <= 0.15 * expect.abs(),
                        "{}: anti dim {} resolved to {} but data measures {}",
                        &w.name, dm, v, expect
                    ),
                    _ => {
                        prop_assert!(
                            v <= expect * (1.0 + 1e-9),
                            "{}: dim {} resolved value {} overestimates measured {}",
                            &w.name, dm, v, expect
                        );
                        let conflated = qa.0[0] * expect;
                        prop_assert!(
                            (v - conflated).abs() <= 0.10 * conflated.abs(),
                            "{}: dim {} resolved to {} but conflated product is {}",
                            &w.name, dm, v, conflated
                        );
                    }
                }
            }
        }
    }
}
