//! The compiled costing pipeline must be an *exact* replacement for the
//! recursive tree walk:
//!
//! 1. `CostProgram::eval` equals `Coster::plan_cost` bit-for-bit, for
//!    randomly generated plan trees (every operator, both join orders) at
//!    random off-grid ESS locations.
//! 2. The incumbent-bound-pruned `PlanDiagram::build` produces exactly the
//!    same diagram as the unpruned reference build on both benchmark
//!    catalogs — the bound only removes memo entries that can never win.

use std::sync::OnceLock;

use proptest::prelude::*;

use plan_bouquet::bouquet::Workload;
use plan_bouquet::catalog::{tpcds, tpch};
use plan_bouquet::cost::{CostModel, CostProgram, Coster, Ess, EssDim, Parallelism};
use plan_bouquet::optimizer::PlanDiagram;
use plan_bouquet::plan::{CmpOp, PlanNode, QueryBuilder, SelSpec};

/// The three-relation TPC-H workload used for random-plan generation:
/// part ⋈ lineitem ⋈ orders with an error-prone selection on part.
fn tpch_2d() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "CC_H_2D");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("p⋈l", 1e-8, 5e-6),
            ],
            20,
        );
        Workload::new("CC_H_2D", cat.clone(), q, ess, CostModel::postgresish())
    })
}

fn tpcds_2d() -> Workload {
    let cat = tpcds::catalog(0.1);
    let mut qb = QueryBuilder::new(&cat, "CC_DS_2D");
    let d = qb.rel("date_dim");
    let cs = qb.rel("catalog_sales");
    let c = qb.rel("customer");
    qb.join(
        d,
        "d_date_sk",
        cs,
        "cs_sold_date_sk",
        SelSpec::ErrorProne(0),
    );
    qb.join(
        cs,
        "cs_bill_customer_sk",
        c,
        "c_customer_sk",
        SelSpec::ErrorProne(1),
    );
    let q = qb.build();
    let rows_d = cat.table("date_dim").unwrap().rows;
    let rows_c = cat.table("customer").unwrap().rows;
    let hi0 = (30.0 / rows_d).min(1.0);
    let hi1 = (50.0 / rows_c).min(1.0);
    let ess = Ess::uniform(
        vec![
            EssDim::new("d⋈cs", hi0 * 1e-3, hi0),
            EssDim::new("cs⋈c", hi1 * 1e-3, hi1),
        ],
        16,
    );
    Workload::new("CC_DS_2D", cat.clone(), q, ess, CostModel::postgresish())
}

/// A scan of `part` (relation 0): all three access paths are exercised.
fn part_scan(kind: u8) -> PlanNode {
    match kind % 3 {
        0 => PlanNode::SeqScan { rel: 0 },
        1 => PlanNode::IndexScan { rel: 0, sel_idx: 0 },
        _ => {
            let cat = &tpch_2d().catalog;
            PlanNode::FullIndexScan {
                rel: 0,
                column: cat.table("part").unwrap().columns[0].id,
            }
        }
    }
}

/// A join of `left` (covering `left_rels`) with base relation `rel` on join
/// predicate `edge`, drawn from all five join operators with both operand
/// orders for the symmetric ones.
fn join(kind: u8, left: PlanNode, rel: usize, edge: usize, sorted: bool) -> PlanNode {
    let right = PlanNode::SeqScan { rel };
    match kind % 6 {
        0 => PlanNode::HashJoin {
            build: Box::new(left),
            probe: Box::new(right),
            edges: vec![edge],
        },
        1 => PlanNode::HashJoin {
            build: Box::new(right),
            probe: Box::new(left),
            edges: vec![edge],
        },
        2 => PlanNode::SortMergeJoin {
            left: Box::new(left),
            right: Box::new(right),
            edges: vec![edge],
            sort_left: sorted,
            sort_right: !sorted,
        },
        3 => PlanNode::BlockNLJoin {
            outer: Box::new(left),
            inner: Box::new(right),
            edges: vec![edge],
        },
        4 => PlanNode::IndexNLJoin {
            outer: Box::new(left),
            inner_rel: rel,
            edges: vec![edge],
        },
        _ => PlanNode::AntiJoin {
            left: Box::new(left),
            right: Box::new(right),
            edges: vec![edge],
        },
    }
}

/// Assemble a full random plan over part(0) ⋈ lineitem(1) ⋈ orders(2).
/// `order` flips the join order; `wrap` optionally roots the tree with a
/// spill directive or a hash aggregate.
fn random_plan(scan: u8, j1: u8, j2: u8, order: bool, sorted: bool, wrap: u8) -> PlanNode {
    let base = part_scan(scan);
    // Edge 0 is p⋈l, edge 1 is l⋈o.
    let joined = if order {
        join(j2, join(j1, base, 1, 0, sorted), 2, 1, sorted)
    } else {
        // Start from lineitem ⋈ orders, then bring in part.
        let lo = join(j1, PlanNode::SeqScan { rel: 1 }, 2, 1, sorted);
        join(j2, lo, 0, 0, sorted)
    };
    match wrap % 3 {
        0 => joined,
        1 => PlanNode::Spill {
            input: Box::new(joined),
        },
        _ => PlanNode::HashAggregate {
            input: Box::new(joined),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Compiled program evaluation is bit-for-bit identical to the
    /// recursive tree walk — total cost AND the full NodeCost triple —
    /// for random plan shapes at random ESS locations.
    #[test]
    fn compiled_program_matches_tree_walk(
        scan in 0u8..3,
        j1 in 0u8..6,
        j2 in 0u8..6,
        order in any::<bool>(),
        sorted in any::<bool>(),
        wrap in 0u8..3,
        f in [0.0f64..=1.0, 0.0f64..=1.0],
    ) {
        let w = tpch_2d();
        let plan = random_plan(scan, j1, j2, order, sorted, wrap);
        let q = w.ess.point_at_fractions(&f);

        let coster = Coster::new(&w.catalog, &w.query, &w.model);
        let walked = coster.cost(&plan, &q);

        let prog = CostProgram::compile(&w.catalog, &w.query, &w.model, &plan);
        let compiled = prog.eval(&q);

        prop_assert_eq!(
            compiled.cost.to_bits(),
            walked.cost.to_bits(),
            "cost diverged: compiled {} vs walked {} for {:?}",
            compiled.cost,
            walked.cost,
            plan
        );
        prop_assert_eq!(compiled.rows.to_bits(), walked.rows.to_bits());
        prop_assert_eq!(
            compiled.cost.to_bits(),
            coster.plan_cost(&plan, &q).to_bits()
        );
    }
}

/// The pruned and unpruned builds must agree exactly: same POSP plans in
/// the same order, same per-point winners, bitwise-equal PIC.
fn assert_pruned_matches_unpruned(w: &Workload) {
    for workers in [1, 4] {
        let par = Parallelism::new(workers);
        let pruned = PlanDiagram::build_with(&w.catalog, &w.query, &w.model, &w.ess, par);
        let plain = PlanDiagram::build_with_unpruned(&w.catalog, &w.query, &w.model, &w.ess, par);

        assert_eq!(
            pruned.plans.len(),
            plain.plans.len(),
            "{}: POSP size differs with {workers} workers",
            w.name
        );
        for (a, b) in pruned.plans.iter().zip(&plain.plans) {
            assert_eq!(a.root, b.root, "{}: POSP plan differs", w.name);
        }
        assert_eq!(pruned.optimal, plain.optimal, "{}: winners differ", w.name);
        assert_eq!(pruned.opt_cost.len(), plain.opt_cost.len());
        for (li, (a, b)) in pruned.opt_cost.iter().zip(&plain.opt_cost).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: PIC cost differs at grid point {li}: {a} vs {b}",
                w.name
            );
        }
    }
}

#[test]
fn pruned_build_matches_unpruned_tpch() {
    assert_pruned_matches_unpruned(tpch_2d());
}

#[test]
fn pruned_build_matches_unpruned_tpcds() {
    assert_pruned_matches_unpruned(&tpcds_2d());
}
