//! Robustness integration tests: the fault-free equivalence of the robust
//! driver (property-tested over random TPC-H / TPC-DS locations), typed
//! dimension-mismatch errors, budget exhaustion under extreme model error,
//! and the degradation ladder under persistent faults.

use std::sync::OnceLock;

use proptest::prelude::*;

use pb_faults::{FaultKind, FaultPlan, PbError, Trigger};
use plan_bouquet::bouquet::{Bouquet, BouquetConfig, ExecutionOutcome, RobustConfig, RobustEvent};
use plan_bouquet::cost::{CostPerturbation, SelPoint};
use plan_bouquet::workloads;

fn bouquet_h() -> &'static Bouquet {
    static B: OnceLock<Bouquet> = OnceLock::new();
    B.get_or_init(|| {
        let w = workloads::eq_1d();
        Bouquet::identify(&w, &BouquetConfig::default()).unwrap()
    })
}

fn bouquet_ds() -> &'static Bouquet {
    static B: OnceLock<Bouquet> = OnceLock::new();
    B.get_or_init(|| {
        let w = workloads::ds_q15_3d();
        Bouquet::identify(&w, &BouquetConfig::default()).unwrap()
    })
}

/// With an empty fault plan, `run_robust` must be structurally identical to
/// the plain driver it wraps — same trace, same outcome, same total — and
/// must record nothing.
fn assert_inert_equivalence(b: &Bouquet, qa: &SelPoint) {
    for optimized in [false, true] {
        let cfg = RobustConfig {
            faults: FaultPlan::none(),
            optimized,
            ..Default::default()
        };
        let robust = b.run_robust(qa, &cfg).unwrap();
        let plain = if optimized {
            b.run_optimized(qa).unwrap()
        } else {
            b.run_basic(qa).unwrap()
        };
        assert_eq!(robust.run, plain, "optimized={optimized}");
        assert!(robust.events.is_empty());
        assert!(!robust.degraded);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TPC-H 1D: fault-free robust runs are the plain runs, at any location.
    #[test]
    fn empty_fault_plan_is_inert_tpch(f in 0.0f64..=1.0) {
        let b = bouquet_h();
        let qa = b.workload.ess.point_at_fractions(&[f]);
        assert_inert_equivalence(b, &qa);
    }

    /// TPC-DS 3D: same property on a multidimensional error space.
    #[test]
    fn empty_fault_plan_is_inert_tpcds(f in [0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0]) {
        let b = bouquet_ds();
        let qa = b.workload.ess.point_at_fractions(&f);
        assert_inert_equivalence(b, &qa);
    }
}

#[test]
fn dimension_mismatch_is_a_typed_error() {
    let b = bouquet_h();
    let qa = SelPoint(vec![0.5, 0.5]); // 2D point against a 1D bouquet
    match b.run_basic(&qa) {
        Err(PbError::DimensionMismatch {
            expected: 1,
            got: 2,
        }) => {}
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
    assert!(b.run_optimized(&qa).is_err());
    let cfg = RobustConfig::default();
    assert!(b.run_robust(&qa, &cfg).is_err());
}

/// Under extreme model error (δ so large actual costs can exceed every
/// overflow doubling) the basic driver must report `BudgetExhausted` rather
/// than looping or panicking — and must still charge every abort.
#[test]
fn extreme_model_error_exhausts_the_budget_schedule() {
    let w = workloads::eq_1d();
    let mut exhausted = false;
    for seed in 0..64 {
        let cfg = BouquetConfig {
            perturbation: CostPerturbation::with_delta(1e300, seed),
            ..Default::default()
        };
        let b = Bouquet::identify(&w, &cfg).unwrap();
        let qa = w.ess.point_at_fractions(&[0.9]);
        let run = b.run_basic(&qa).unwrap();
        if let ExecutionOutcome::BudgetExhausted { contours_tried } = run.outcome {
            exhausted = true;
            // The full schedule — grading plus all overflow doublings — was
            // driven to the end.
            assert!(contours_tried > b.contours.len());
            assert!(run.trace.iter().all(|e| !e.completed));
            let sum: f64 = run.trace.iter().map(|e| e.spent).sum();
            assert!(
                (sum - run.total_cost).abs() <= 1e-9 * sum,
                "aborts must stay charged"
            );
            break;
        }
    }
    assert!(
        exhausted,
        "no perturbation seed exhausted the schedule — δ=1e300 should defeat 64 doublings"
    );
}

/// A transient operator failure is retried on the same plan; the wasted
/// attempt stays charged and the run still completes.
#[test]
fn transient_fault_is_retried_and_charged() {
    let b = bouquet_h();
    let qa = b.workload.ess.point_at_fractions(&[0.7]);
    let plain = b.run_basic(&qa).unwrap();
    let cfg = RobustConfig {
        faults: FaultPlan::new(5).with(
            FaultKind::OperatorFailure { waste_frac: 0.5 },
            Trigger::Nth(1),
        ),
        ..Default::default()
    };
    let robust = b.run_robust(&qa, &cfg).unwrap();
    assert!(robust.run.completed());
    assert!(!robust.degraded);
    assert!(robust
        .events
        .iter()
        .any(|e| matches!(e, RobustEvent::Retry { .. })));
    // The faulted first attempt is charged on top of the plain schedule.
    assert!(robust.run.total_cost > plain.total_cost);
    let sum: f64 = robust.run.trace.iter().map(|e| e.spent).sum();
    assert!((sum - robust.run.total_cost).abs() <= 1e-9 * sum);
}

/// A clock-skew fault that starves every budget trips the spend monitor and
/// degrades to the native-optimizer rung, which completes unbudgeted.
#[test]
fn persistent_skew_degrades_to_native_execution() {
    let b = bouquet_h();
    let qa = b.workload.ess.point_at_fractions(&[0.9]);
    let cfg = RobustConfig {
        faults: FaultPlan::new(1).with(
            FaultKind::BudgetClockSkew { factor: 1e-6 },
            Trigger::Every(1),
        ),
        max_violations: 3,
        ..Default::default()
    };
    let robust = b.run_robust(&qa, &cfg).unwrap();
    assert!(robust.degraded);
    assert!(matches!(
        robust.run.outcome,
        ExecutionOutcome::Degraded { .. }
    ));
    assert!(robust
        .events
        .iter()
        .any(|e| matches!(e, RobustEvent::MonitorViolation { .. })));
    assert!(robust
        .events
        .iter()
        .any(|e| matches!(e, RobustEvent::Degraded { .. })));
    // The degraded execution is the last trace entry, unbudgeted, completed.
    let last = robust.run.trace.last().unwrap();
    assert!(last.completed && last.budget.is_infinite());
    // Every aborted probe before degradation stays charged.
    let sum: f64 = robust.run.trace.iter().map(|e| e.spent).sum();
    assert!((sum - robust.run.total_cost).abs() <= 1e-9 * sum);
}

/// Faults that never stop (every execution fails, retries exhausted, and the
/// degraded rung fails too) end in `BudgetExhausted` — never a panic or an
/// unaccounted abort.
#[test]
fn unrecoverable_faults_end_in_budget_exhausted() {
    let b = bouquet_h();
    let qa = b.workload.ess.point_at_fractions(&[0.5]);
    let cfg = RobustConfig {
        faults: FaultPlan::new(2).with(
            FaultKind::OperatorFailure { waste_frac: 0.5 },
            Trigger::Every(1),
        ),
        plan_retries: 1,
        max_violations: 2,
        ..Default::default()
    };
    let robust = b.run_robust(&qa, &cfg).unwrap();
    assert!(matches!(
        robust.run.outcome,
        ExecutionOutcome::BudgetExhausted { .. }
    ));
    assert!(robust
        .events
        .iter()
        .any(|e| matches!(e, RobustEvent::PlanAbandoned { .. })));
    let sum: f64 = robust.run.trace.iter().map(|e| e.spent).sum();
    assert!((sum - robust.run.total_cost).abs() <= 1e-9 * sum.abs().max(1.0));
}
