//! Validation of the paper's theoretical results (Section 3) against the
//! executable system: Theorems 1–3, the anorexic trade-off, and the bounded
//! model-error framework.

use plan_bouquet::bouquet::{theory, Bouquet, BouquetConfig};
use plan_bouquet::cost::CostPerturbation;
use plan_bouquet::workloads;

/// Theorem 1: for 1D spaces, measured MSO ≤ (1+λ)·r²/(r−1) for every r.
#[test]
fn theorem1_holds_for_all_ratios_1d() {
    let w = workloads::eq_1d();
    for r in [1.25, 1.5, 2.0, 2.5, 3.0, 5.0] {
        let cfg = BouquetConfig {
            r,
            ..Default::default()
        };
        let b = Bouquet::identify(&w, &cfg).unwrap();
        let bound = (1.0 + cfg.lambda) * theory::mso_bound_1d(r);
        for li in 0..w.ess.num_points() {
            let qa = w.ess.point(&w.ess.unlinear(li));
            let so = b
                .run_basic(&qa)
                .expect("run")
                .suboptimality(b.pic_cost_at(li));
            assert!(so <= bound * (1.0 + 1e-9), "r={r} li={li}: {so} > {bound}");
        }
    }
}

/// Theorem 2 (numerically): every monotone budget progression the adversary
/// faces pays at least 4; doubling pays exactly 4 in the limit.
#[test]
fn theorem2_lower_bound_numeric() {
    // A wide family of budget progressions.
    let families: Vec<Vec<f64>> = vec![
        (0..40).map(|k| 2f64.powi(k)).collect(),
        (0..40).map(|k| 1.5f64.powi(k)).collect(),
        (0..40).map(|k| 3f64.powi(k)).collect(),
        (1..60).map(|k| k as f64).collect(),
        (1..60).map(|k| (k * k) as f64).collect(),
        (1..40).map(|k| (k as f64).exp()).collect(),
    ];
    for budgets in families {
        let mso = theory::adversarial_mso(&budgets);
        assert!(mso >= 4.0 - 1e-6, "progression beat the lower bound: {mso}");
    }
}

/// Theorem 3: multi-D measured MSO ≤ (1+λ)·ρ·r²/(r−1); with r = 2 the bound
/// is 4(1+λ)ρ.
#[test]
fn theorem3_multi_dimensional_bound() {
    for w in [workloads::h_q8a_2d(1.0), workloads::h_q5_3d()] {
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let bound = theory::mso_bound_anorexic(b.rho(), 2.0, 0.2);
        assert!((bound - b.mso_bound()).abs() < 1e-9);
        let n = w.ess.num_points();
        for li in (0..n).step_by((n / 400).max(1)) {
            let qa = w.ess.point(&w.ess.unlinear(li));
            let so = b
                .run_basic(&qa)
                .expect("run")
                .suboptimality(b.pic_cost_at(li));
            assert!(so <= bound * (1.0 + 1e-9), "{}: {so} > {bound}", w.name);
        }
    }
}

/// Section 3.3: increasing λ weakly decreases ρ (the whole point of the
/// anorexic trade-off), and the bouquet still respects its adjusted bound.
#[test]
fn anorexic_tradeoff_monotone_in_lambda() {
    let w = workloads::h_q8a_2d(1.0);
    let mut last_rho = usize::MAX;
    for lambda in [0.0, 0.1, 0.2, 0.4, 0.8] {
        let cfg = BouquetConfig {
            lambda,
            ..Default::default()
        };
        let b = Bouquet::identify(&w, &cfg).unwrap();
        assert!(b.rho() <= last_rho, "ρ must not grow with λ");
        last_rho = b.rho();
        let qa = w.ess.point_at_fractions(&[0.6, 0.6]);
        let so = b
            .run_basic(&qa)
            .expect("run")
            .suboptimality(b.pic_cost(&qa));
        assert!(so <= b.mso_bound() * (1.0 + 1e-9), "λ={lambda}");
    }
}

/// Section 3.4: with a δ-bounded model-error adversary, the measured MSO
/// (against actual optimal costs) stays within (1+δ)² of the perfect-model
/// MSO bound.
#[test]
fn model_error_inflation_bounded() {
    let w = workloads::h_q8a_2d(1.0);
    let delta = 0.4;
    for seed in [3, 17, 99] {
        let cfg = BouquetConfig {
            perturbation: CostPerturbation::with_delta(delta, seed),
            ..Default::default()
        };
        let b = Bouquet::identify(&w, &cfg).unwrap();
        let cap = b.mso_bound() * theory::model_error_inflation(delta);
        let coster = w.coster();
        let ex = plan_bouquet::executor::Executor::with_perturbation(coster, cfg.perturbation);
        let n = w.ess.num_points();
        for li in (0..n).step_by(7) {
            let qa = w.ess.point(&w.ess.unlinear(li));
            let run = b.run_basic(&qa).unwrap();
            assert!(run.completed(), "seed {seed} li {li}");
            // Actual optimal cost under the same adversary.
            let opt_actual = b
                .diagram
                .plans
                .iter()
                .map(|p| ex.actual_cost(&p.root, &qa))
                .fold(f64::INFINITY, f64::min);
            let so = run.total_cost / opt_actual;
            assert!(
                so <= cap * (1.0 + 1e-9),
                "seed {seed} li {li}: {so} > {cap}"
            );
        }
    }
}

/// The closed-form bound functions are mutually consistent.
#[test]
fn bound_function_consistency() {
    assert_eq!(theory::mso_bound_multi(1, 2.0), theory::mso_bound_1d(2.0));
    assert_eq!(
        theory::mso_bound_anorexic(3, 2.0, 0.0),
        theory::mso_bound_multi(3, 2.0)
    );
    assert!(
        theory::mso_bound_1d(theory::optimal_ratio()) <= theory::DETERMINISTIC_LOWER_BOUND + 1e-12
    );
    assert_eq!(theory::model_error_inflation(0.0), 1.0);
}
