//! Property tests for the SQL front-end: structural fidelity, `?`-marking,
//! and insensitivity to formatting noise.

use proptest::prelude::*;

use plan_bouquet::catalog::tpch;
use plan_bouquet::plan::parse_sql;

/// TPC-H FK edges usable to build random valid join chains.
const EDGES: &[(&str, &str, &str, &str)] = &[
    ("part", "p_partkey", "lineitem", "l_partkey"),
    ("supplier", "s_suppkey", "lineitem", "l_suppkey"),
    ("orders", "o_orderkey", "lineitem", "l_orderkey"),
    ("customer", "c_custkey", "orders", "o_custkey"),
    ("nation", "n_nationkey", "supplier", "s_nationkey"),
];

const SELECTIONS: &[(&str, &str, f64, f64)] = &[
    ("part", "p_retailprice", 900.0, 2099.0),
    ("part", "p_size", 1.0, 50.0),
    ("supplier", "s_acctbal", -999.0, 9999.0),
    ("orders", "o_totalprice", 858.0, 555285.0),
    ("customer", "c_acctbal", -999.0, 9999.0),
];

/// Build a random SQL query over a prefix of the FK chain; returns the SQL
/// plus the expected (#relations, #joins, #dims).
fn build_sql(
    n_edges: usize,
    marks: &[bool],
    sel_mask: &[bool],
    sel_consts: &[f64],
    ws: usize,
) -> (String, usize, usize, usize) {
    let edges = &EDGES[..n_edges];
    let mut tables: Vec<&str> = Vec::new();
    for (a, _, b, _) in edges {
        if !tables.contains(a) {
            tables.push(a);
        }
        if !tables.contains(b) {
            tables.push(b);
        }
    }
    let pad = " ".repeat(ws + 1);
    let mut preds: Vec<String> = Vec::new();
    let mut dims = 0;
    for (i, (_, ac, _, bc)) in edges.iter().enumerate() {
        let mark = if marks[i % marks.len()] {
            dims += 1;
            "?"
        } else {
            ""
        };
        preds.push(format!("{ac}{pad}={pad}{bc}{mark}"));
    }
    let mut nsel = 0;
    for (i, (t, col, lo, hi)) in SELECTIONS.iter().enumerate() {
        if sel_mask[i % sel_mask.len()] && tables.contains(t) {
            let c = lo + sel_consts[i % sel_consts.len()].fract().abs() * (hi - lo);
            preds.push(format!("{col}{pad}<{pad}{c:.2}"));
            nsel += 1;
        }
    }
    let _ = nsel;
    let sql = format!(
        "SELECT{pad}*{pad}FROM{pad}{}{pad}WHERE{pad}{}",
        tables.join(&format!(",{pad}")),
        preds.join(&format!("{pad}AND{pad}"))
    );
    (sql, tables.len(), edges.len(), dims)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_queries_parse_with_expected_structure(
        n_edges in 1usize..=5,
        marks in proptest::collection::vec(any::<bool>(), 1..6),
        sel_mask in proptest::collection::vec(any::<bool>(), 1..6),
        sel_consts in proptest::collection::vec(0.0f64..1.0, 1..6),
        ws in 0usize..3,
    ) {
        let cat = tpch::catalog(1.0);
        let (sql, nrel, njoin, ndims) = build_sql(n_edges, &marks, &sel_mask, &sel_consts, ws);
        let q = parse_sql(&cat, &sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        prop_assert_eq!(q.num_relations(), nrel);
        prop_assert_eq!(q.joins.len(), njoin);
        prop_assert_eq!(q.num_dims, ndims);
        prop_assert!(q.join_graph().is_connected());
    }

    /// Keyword case must not matter.
    #[test]
    fn keyword_case_insensitive(upper in any::<bool>()) {
        let cat = tpch::catalog(1.0);
        let base = "SELECT * FROM part, lineitem WHERE p_partkey = l_partkey?";
        let sql = if upper {
            base.to_uppercase().replace("P_PARTKEY", "p_partkey").replace("L_PARTKEY", "l_partkey")
            .replace("PART,", "part,").replace("LINEITEM", "lineitem")
        } else {
            base.to_lowercase().replace("select", "SeLeCt")
        };
        let a = parse_sql(&cat, base).unwrap();
        let b = parse_sql(&cat, &sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        prop_assert_eq!(a.num_relations(), b.num_relations());
        prop_assert_eq!(a.joins.len(), b.joins.len());
        prop_assert_eq!(a.num_dims, b.num_dims);
    }

    /// Garbage never panics — it errors.
    #[test]
    fn garbage_is_rejected_gracefully(s in "[a-zA-Z0-9 *,.<>=()?]{0,60}") {
        let cat = tpch::catalog(1.0);
        let _ = parse_sql(&cat, &s); // must not panic
    }
}
