//! The parallel identification pipeline must be bit-for-bit deterministic:
//! any worker count has to produce exactly the same serialized bouquet as
//! the sequential reference path. Chunk boundaries depend only on the item
//! count and plans are canonicalized by first appearance in grid order, so
//! this holds by construction — these tests pin it against regressions on
//! both benchmark catalogs.

use plan_bouquet::bouquet::{persist, Bouquet, BouquetConfig, PhaseTimings, Workload};
use plan_bouquet::catalog::{tpcds, tpch};
use plan_bouquet::cost::{CostModel, Ess, EssDim, Parallelism};
use plan_bouquet::plan::{CmpOp, QueryBuilder, SelSpec};

/// A compact TPC-H 2D workload (join + selection error dims) sized so the
/// whole compile pipeline runs in seconds at any worker count.
fn tpch_2d() -> Workload {
    let cat = tpch::catalog(1.0);
    let mut qb = QueryBuilder::new(&cat, "DET_H_2D");
    let p = qb.rel("part");
    let l = qb.rel("lineitem");
    let o = qb.rel("orders");
    qb.select(
        p,
        "p_retailprice",
        CmpOp::Lt,
        1000.0,
        SelSpec::ErrorProne(0),
    );
    qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
    qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
    let q = qb.build();
    let ess = Ess::uniform(
        vec![
            EssDim::new("p_retailprice", 1e-4, 1.0),
            EssDim::new("p⋈l", 1e-8, 5e-6),
        ],
        20,
    );
    Workload::new("DET_H_2D", cat.clone(), q, ess, CostModel::postgresish())
}

/// A compact TPC-DS 2D workload over the catalog_sales star.
fn tpcds_2d() -> Workload {
    let cat = tpcds::catalog(0.1);
    let mut qb = QueryBuilder::new(&cat, "DET_DS_2D");
    let d = qb.rel("date_dim");
    let cs = qb.rel("catalog_sales");
    let c = qb.rel("customer");
    qb.join(
        d,
        "d_date_sk",
        cs,
        "cs_sold_date_sk",
        SelSpec::ErrorProne(0),
    );
    qb.join(
        cs,
        "cs_bill_customer_sk",
        c,
        "c_customer_sk",
        SelSpec::ErrorProne(1),
    );
    let q = qb.build();
    let rows_d = cat.table("date_dim").unwrap().rows;
    let rows_c = cat.table("customer").unwrap().rows;
    let hi0 = (30.0 / rows_d).min(1.0);
    let hi1 = (50.0 / rows_c).min(1.0);
    let ess = Ess::uniform(
        vec![
            EssDim::new("d⋈cs", hi0 * 1e-3, hi0),
            EssDim::new("cs⋈c", hi1 * 1e-3, hi1),
        ],
        16,
    );
    Workload::new("DET_DS_2D", cat.clone(), q, ess, CostModel::postgresish())
}

fn assert_parallel_matches_serial(w: &Workload) {
    let cfg = BouquetConfig::default();
    let (serial, t): (Bouquet, PhaseTimings) =
        Bouquet::identify_timed(w, &cfg, Parallelism::serial()).expect("serial identify");
    assert_eq!(t.workers, 1);
    let json_serial = persist::to_json(&serial).expect("serialize serial");

    // Worker counts around and beyond the chunking sweet spot, including
    // counts that do not divide the grid size.
    for workers in [2, 3, 4, 7] {
        let par =
            Bouquet::identify_with(w, &cfg, Parallelism::new(workers)).expect("parallel identify");
        let json_par = persist::to_json(&par).expect("serialize parallel");
        assert_eq!(
            json_serial, json_par,
            "{}: {workers}-worker bouquet differs from sequential",
            w.name
        );
    }
}

#[test]
fn tpch_identification_is_deterministic_across_worker_counts() {
    assert_parallel_matches_serial(&tpch_2d());
}

#[test]
fn tpcds_identification_is_deterministic_across_worker_counts() {
    assert_parallel_matches_serial(&tpcds_2d());
}

#[test]
fn timed_and_untimed_paths_agree() {
    let w = tpch_2d();
    let cfg = BouquetConfig::default();
    let a = Bouquet::identify(&w, &cfg).unwrap();
    let (b, t) = Bouquet::identify_timed(&w, &cfg, Parallelism::auto()).unwrap();
    assert_eq!(persist::to_json(&a).unwrap(), persist::to_json(&b).unwrap());
    assert!(t.total >= t.diagram, "total must include the diagram phase");
    assert!(t.workers >= 1);
}
