//! Tenant spend-cap accounting: exhaustion exactly at a decision point.
//!
//! The serving layer enforces per-tenant budgets by threading
//! `RobustConfig::spend_cap` into the robust driver, which checks the cap
//! *before* granting each execution's budget and finishes on the capped
//! rung when it would be breached. The adversarial placement is a cap set
//! to the run's own cumulative spend at an execution boundary — the exact
//! instant the driver decides whether to retry, escalate, or abandon.
//! There the accounting must hold with no slack:
//!
//! * the trace's per-execution spends sum to `total_cost` — an execution
//!   cut off at the cap is charged once, never twice;
//! * `total_cost` never exceeds the cap;
//! * no execution spends more than the budget it was granted;
//! * the outcome is [`ExecutionOutcome::BudgetExhausted`] or (when the
//!   leftover headroom funds a completing native attempt)
//!   [`ExecutionOutcome::Degraded`] — never a silent `Completed`.
//!
//! Property-tested over random true locations, both drivers, and fault
//! plans that force retry/abandon traffic right where the cap lands, on
//! both the cost-unit simulator and the vectorized engine substrate.

use std::sync::OnceLock;

use proptest::prelude::*;

use pb_faults::{FaultKind, FaultPlan, Trigger};
use plan_bouquet::bouquet::{
    Bouquet, BouquetConfig, BouquetRun, EngineSubstrate, ExecutionOutcome, ExecutionSubstrate,
    RobustConfig, SimulatorSubstrate,
};
use plan_bouquet::engine::Database;
use plan_bouquet::faults::FaultInjector;
use plan_bouquet::workloads;

fn bouquet_2d() -> &'static Bouquet {
    static B: OnceLock<Bouquet> = OnceLock::new();
    B.get_or_init(|| {
        Bouquet::identify(&workloads::h_q8a_2d(0.01), &BouquetConfig::default()).unwrap()
    })
}

fn engine_db() -> &'static Database {
    static D: OnceLock<Database> = OnceLock::new();
    D.get_or_init(|| {
        let b = bouquet_2d();
        Database::generate(&b.workload.catalog, 42, &[]).unwrap()
    })
}

/// Cumulative charged spend after each trace entry — the decision
/// boundaries where the driver consults the cap.
fn boundaries(run: &BouquetRun) -> Vec<f64> {
    run.trace
        .iter()
        .scan(0.0, |acc, e| {
            *acc += e.spent;
            Some(*acc)
        })
        .collect()
}

fn rel_le(a: f64, b: f64) -> bool {
    a <= b * (1.0 + 1e-9) + 1e-12
}

/// Run uncapped, place the cap exactly on a chosen decision boundary, and
/// check the capped rerun's accounting. `pick` selects the boundary from
/// the eligible ones (those strictly below the uncapped total, so the cap
/// genuinely binds).
fn check_cap_at_boundary<S, F>(label: &str, b: &Bouquet, mk_sub: F, cfg: &RobustConfig, pick: f64)
where
    S: ExecutionSubstrate,
    F: Fn() -> S,
{
    let mut free_sub = mk_sub();
    let free = b
        .run_robust_on(&mut free_sub, cfg)
        .unwrap_or_else(|e| panic!("{label}: uncapped run failed: {e:?}"));
    let total = free.run.total_cost;
    let cuts: Vec<f64> = boundaries(&free.run)
        .into_iter()
        .filter(|c| *c < total * (1.0 - 1e-9))
        .collect();
    if cuts.is_empty() {
        // Single-execution run: no interior boundary to cut at.
        return;
    }
    let cap = cuts[((pick * cuts.len() as f64) as usize).min(cuts.len() - 1)];

    let cfg_cap = RobustConfig {
        spend_cap: Some(cap),
        ..cfg.clone()
    };
    let mut sub = mk_sub();
    let capped = b
        .run_robust_on(&mut sub, &cfg_cap)
        .unwrap_or_else(|e| panic!("{label}: capped run failed: {e:?}"));
    let run = &capped.run;

    // Terminal state: the cap binds, so the run can never claim a full
    // bouquet completion — only exhaustion, or degraded-within-headroom.
    assert!(
        matches!(
            run.outcome,
            ExecutionOutcome::BudgetExhausted { .. } | ExecutionOutcome::Degraded { .. }
        ),
        "{label} cap={cap}: capped run ended {:?}",
        run.outcome
    );

    // No double charge: the trace is the ledger, and it sums to the bill.
    let traced: f64 = run.trace.iter().map(|e| e.spent).sum();
    assert!(
        (traced - run.total_cost).abs() <= 1e-9 * run.total_cost.abs().max(1.0),
        "{label} cap={cap}: trace sums to {traced}, charged {}",
        run.total_cost
    );

    // The cap is a hard ceiling on charged spend.
    assert!(
        rel_le(run.total_cost, cap),
        "{label}: charged {} over cap {cap}",
        run.total_cost
    );

    // Per-execution: nothing spends past its grant, even the execution the
    // cap truncated.
    for (i, e) in run.trace.iter().enumerate() {
        assert!(
            rel_le(e.spent, e.budget),
            "{label} cap={cap}: exec {i} spent {} over its {} grant",
            e.spent,
            e.budget
        );
    }

    // Determinism: until the cap intervenes, the capped run walks the same
    // (contour, plan) decisions as the free run. The capped rung's own
    // fallback entry (contour 0) may terminate the trace early.
    for (i, (f, c)) in free.run.trace.iter().zip(&run.trace).enumerate() {
        if c.budget.to_bits() != f.budget.to_bits() {
            break; // the truncated grant — everything after is capped-rung
        }
        assert_eq!(
            (f.contour, f.plan),
            (c.contour, c.plan),
            "{label} cap={cap}: decision {i} diverged before the cap bound"
        );
    }
}

/// The fault plan used to pile retry/abandon decisions around the cap:
/// every third budgeted execution dies mid-flight, wasting half its grant.
fn flaky(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with(
        FaultKind::OperatorFailure { waste_frac: 0.5 },
        Trigger::Every(3),
    )
}

fn sim_cfgs(seed: u64) -> Vec<(&'static str, RobustConfig)> {
    let mut cfgs = Vec::new();
    for optimized in [false, true] {
        cfgs.push((
            if optimized { "sim/opt" } else { "sim/basic" },
            RobustConfig {
                optimized,
                ..Default::default()
            },
        ));
        cfgs.push((
            if optimized {
                "sim/opt+faults"
            } else {
                "sim/basic+faults"
            },
            RobustConfig {
                optimized,
                faults: flaky(seed),
                ..Default::default()
            },
        ));
    }
    cfgs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Simulator substrate: cap-at-boundary accounting at random true
    /// locations, both drivers, with and without fault traffic.
    #[test]
    fn simulator_cap_at_decision_point_never_double_charges(
        f in [0.0f64..=1.0, 0.0f64..=1.0],
        pick in 0.0f64..1.0,
        seed in 0u64..1024,
    ) {
        let b = bouquet_2d();
        let qa = b.workload.ess.point_at_fractions(&f);
        for (label, cfg) in sim_cfgs(seed) {
            check_cap_at_boundary(
                label,
                b,
                || SimulatorSubstrate::new(b, &qa, FaultInjector::none()).unwrap(),
                &cfg,
                pick,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Engine substrate: the same contract on real tuples (fewer cases —
    /// each probe is four full engine-backed bouquet runs).
    #[test]
    fn engine_cap_at_decision_point_never_double_charges(
        pick in 0.0f64..1.0,
        optimized in any::<bool>(),
    ) {
        let b = bouquet_2d();
        let db = engine_db();
        let cfg = RobustConfig { optimized, ..Default::default() };
        check_cap_at_boundary(
            if optimized { "engine/opt" } else { "engine/basic" },
            b,
            || EngineSubstrate::new(b, db, FaultInjector::none()),
            &cfg,
            pick,
        );
    }
}

/// Deterministic pin: with the cap placed on *every* boundary of a single
/// faulted run — including right after a retried and an abandoned
/// execution — the invariants hold at each placement.
#[test]
fn every_boundary_of_a_faulted_run_holds() {
    let b = bouquet_2d();
    let qa = b.workload.ess.point_at_fractions(&[0.7, 0.55]);
    let cfg = RobustConfig {
        faults: flaky(7),
        ..Default::default()
    };
    let mut free_sub = SimulatorSubstrate::new(b, &qa, FaultInjector::none()).unwrap();
    let free = b.run_robust_on(&mut free_sub, &cfg).unwrap();
    let n = free.run.trace.len();
    assert!(n > 2, "fixture run too short to cut ({n} executions)");
    for i in 0..n {
        let pick = (i as f64 + 0.5) / n as f64;
        check_cap_at_boundary(
            "sim/every-boundary",
            b,
            || SimulatorSubstrate::new(b, &qa, FaultInjector::none()).unwrap(),
            &cfg,
            pick,
        );
    }
}
