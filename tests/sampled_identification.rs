//! Integration checks for sampling-based (PAO-style) identification through
//! the public facade: determinism, the pointwise (1+ε) PIC contract, the
//! optimizer-call savings that motivate the mode, and the realized MSO
//! inflation of the resulting bouquet against an exhaustively-built one.

use plan_bouquet::bouquet::{persist, Bouquet, BouquetConfig, Workload};
use plan_bouquet::cost::{Ess, Parallelism};
use plan_bouquet::optimizer::SampledBuildConfig;
use plan_bouquet::workloads;

fn coarse(w: Workload, res: usize) -> Workload {
    let ess = Ess::uniform(w.ess.dims.clone(), res);
    Workload::new(
        w.name.clone(),
        w.catalog.clone(),
        w.query.clone(),
        ess,
        w.model.clone(),
    )
}

fn scfg() -> SampledBuildConfig {
    SampledBuildConfig {
        seed: 17,
        epsilon: 0.1,
        delta: 0.1,
        initial_samples: 48,
        max_rounds: 8,
    }
}

#[test]
fn sampled_identification_is_deterministic_across_parallelism() {
    let w = coarse(workloads::h_q8a_2d(1.0), 24);
    let cfg = BouquetConfig::default();
    let (a, _, sa) = Bouquet::identify_sampled(&w, &cfg, &scfg(), Parallelism::serial()).unwrap();
    let (b, _, sb) = Bouquet::identify_sampled(&w, &cfg, &scfg(), Parallelism::new(4)).unwrap();
    let (c, _, sc) = Bouquet::identify_sampled(&w, &cfg, &scfg(), Parallelism::serial()).unwrap();
    assert_eq!(sa, sb);
    assert_eq!(sa, sc);
    let ja = persist::to_json(&a).unwrap();
    assert_eq!(ja, persist::to_json(&b).unwrap());
    assert_eq!(ja, persist::to_json(&c).unwrap());
}

#[test]
fn sampled_pic_respects_the_epsilon_contract_on_a_3d_workload() {
    let w = coarse(workloads::ds_q15_3d(), 8);
    let cfg = BouquetConfig::default();
    let eps = scfg().epsilon;
    let (sampled, _, stats) =
        Bouquet::identify_sampled(&w, &cfg, &scfg(), Parallelism::serial()).unwrap();
    let exact = Bouquet::identify(&w, &cfg).unwrap();

    assert!(
        stats.converged,
        "refinement must converge within the round cap"
    );
    assert!(
        !stats.exhaustive_fallback && stats.optimizer_calls < w.ess.num_points(),
        "sampling must beat the exhaustive sweep on optimizer calls \
         ({} vs {})",
        stats.optimizer_calls,
        w.ess.num_points()
    );

    let n = w.ess.num_points();
    let mut violations = 0usize;
    for li in 0..n {
        let s = sampled.pic_cost_at(li);
        let e = exact.pic_cost_at(li);
        // The sampled PIC is a min over a plan subset: never below the true
        // optimum, and beyond (1+ε) only on an ε-bounded fraction of points.
        assert!(
            s >= e * (1.0 - 1e-9),
            "sampled PIC below true optimum at {li}"
        );
        if s > (1.0 + eps) * e {
            violations += 1;
        }
    }
    assert!(
        (violations as f64) <= eps * n as f64,
        "violation mass {violations}/{n} exceeds ε = {eps}"
    );
}

#[test]
fn sampled_bouquet_mso_inflation_is_bounded() {
    let w = coarse(workloads::ds_q15_3d(), 8);
    let cfg = BouquetConfig::default();
    let eps = scfg().epsilon;
    let (sampled, _, _) =
        Bouquet::identify_sampled(&w, &cfg, &scfg(), Parallelism::serial()).unwrap();
    let exact = Bouquet::identify(&w, &cfg).unwrap();

    // Realized MSO of both drivers, each judged against the *true* optimum.
    let mut mso_exact = 0.0f64;
    let mut mso_sampled = 0.0f64;
    for li in 0..w.ess.num_points() {
        let qa = w.ess.point(&w.ess.unlinear(li));
        let opt = exact.pic_cost_at(li);
        mso_exact = mso_exact.max(exact.run_basic(&qa).unwrap().suboptimality(opt));
        mso_sampled = mso_sampled.max(sampled.run_basic(&qa).unwrap().suboptimality(opt));
    }
    let inflation = mso_sampled / mso_exact;
    assert!(
        inflation <= 1.0 + eps + 1e-9,
        "realized MSO inflated by {inflation:.4}x (exact {mso_exact:.3}, \
         sampled {mso_sampled:.3}) — beyond the 1+ε bound"
    );
}

#[test]
fn invalid_confidence_parameters_are_rejected() {
    let w = coarse(workloads::h_q8a_2d(1.0), 12);
    let cfg = BouquetConfig::default();
    for (eps, delta) in [(0.0, 0.05), (f64::NAN, 0.05), (0.1, 0.0), (0.1, 1.0)] {
        let bad = SampledBuildConfig {
            epsilon: eps,
            delta,
            ..scfg()
        };
        assert!(
            Bouquet::identify_sampled(&w, &cfg, &bad, Parallelism::serial()).is_err(),
            "ε={eps}, δ={delta} must be rejected"
        );
    }
}
