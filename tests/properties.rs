//! Property-based tests (proptest) over the core invariants: Plan Cost
//! Monotonicity, grading geometry, the first-quadrant invariant, and the
//! sub-optimality guarantee at arbitrary (off-grid) locations.

use std::sync::OnceLock;

use proptest::prelude::*;

use plan_bouquet::bouquet::{Bouquet, BouquetConfig, IsoCostGrading};
use plan_bouquet::cost::SelPoint;
use plan_bouquet::workloads;

fn bouquet_2d() -> &'static Bouquet {
    static B: OnceLock<Bouquet> = OnceLock::new();
    B.get_or_init(|| {
        let w = workloads::h_q8a_2d(1.0);
        Bouquet::identify(&w, &BouquetConfig::default()).unwrap()
    })
}

/// A random location inside the 2D ESS, as per-axis fractions.
fn fractions_2d() -> impl Strategy<Value = [f64; 2]> {
    [0.0f64..=1.0, 0.0f64..=1.0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PCM: every bouquet plan's cost is monotone along every axis, for
    /// arbitrary location pairs ordered componentwise.
    #[test]
    fn plan_cost_monotonicity(f in fractions_2d(), g in fractions_2d()) {
        let b = bouquet_2d();
        let w = &b.workload;
        let lo = w.ess.point_at_fractions(&[f[0].min(g[0]), f[1].min(g[1])]);
        let hi = w.ess.point_at_fractions(&[f[0].max(g[0]), f[1].max(g[1])]);
        let coster = w.coster();
        for pid in b.plan_ids() {
            let plan = &b.plan(pid).root;
            let c_lo = coster.plan_cost(plan, &lo);
            let c_hi = coster.plan_cost(plan, &hi);
            prop_assert!(
                c_hi >= c_lo * (1.0 - 1e-9),
                "PCM violated for plan {pid}: {c_lo} -> {c_hi}"
            );
        }
    }

    /// The optimizer's optimal cost (the PIC) is monotone too, and the
    /// optimal plan's cost equals the reported optimal cost.
    #[test]
    fn pic_monotone_and_self_consistent(f in fractions_2d(), g in fractions_2d()) {
        let b = bouquet_2d();
        let w = &b.workload;
        let lo = w.ess.point_at_fractions(&[f[0].min(g[0]), f[1].min(g[1])]);
        let hi = w.ess.point_at_fractions(&[f[0].max(g[0]), f[1].max(g[1])]);
        let opt = w.optimizer();
        let best_lo = opt.optimize(&lo);
        let best_hi = opt.optimize(&hi);
        prop_assert!(best_hi.cost >= best_lo.cost * (1.0 - 1e-9));
        let recost = w.coster().plan_cost(&best_lo.plan.root, &lo);
        prop_assert!((recost - best_lo.cost).abs() < 1e-6 * best_lo.cost);
    }

    /// Discovery completes at any (off-grid) location with SubOpt in
    /// [1, bound·slack], and the trace is deterministic.
    #[test]
    fn discovery_bounded_at_arbitrary_locations(f in fractions_2d()) {
        let b = bouquet_2d();
        let w = &b.workload;
        let qa = w.ess.point_at_fractions(&f);
        let run = b.run_basic(&qa).unwrap();
        prop_assert!(run.completed());
        let opt = w.optimal_cost(&qa);
        let so = run.suboptimality(opt);
        prop_assert!(so >= 1.0 - 1e-9, "SubOpt below 1: {so}");
        // Off-grid locations sit between grid layers; allow one grid-cell
        // of slack on top of the guarantee.
        prop_assert!(so <= b.mso_bound() * 1.10, "SubOpt {so} vs bound {}", b.mso_bound());
        prop_assert_eq!(run, b.run_basic(&qa).unwrap());
    }

    /// First-quadrant invariant: every learned value in an optimized run is
    /// a true lower bound, and learned values never decrease per dimension.
    #[test]
    fn first_quadrant_invariant(f in fractions_2d()) {
        let b = bouquet_2d();
        let w = &b.workload;
        let qa = w.ess.point_at_fractions(&f);
        let run = b.run_optimized(&qa).unwrap();
        prop_assert!(run.completed());
        let mut last = vec![0.0f64; w.ess.d()];
        for e in &run.trace {
            if let Some((d, v)) = e.learned {
                prop_assert!(v <= qa[d] * (1.0 + 1e-9), "learned {v} > qa {}", qa[d]);
                prop_assert!(v >= 0.0);
                prop_assert!(v >= last[d] * (1.0 - 1e-9) || v <= last[d], "learning is a max-update");
                last[d] = last[d].max(v);
            }
        }
    }

    /// Grading geometry for arbitrary (cmin, cmax, r): boundary conditions
    /// of Section 3.1 always hold.
    #[test]
    fn grading_boundary_conditions(
        cmin in 1e-3f64..1e6,
        span in 1.0f64..1e6,
        r in 1.01f64..8.0,
    ) {
        let cmax = cmin * span;
        let g = IsoCostGrading::geometric(cmin, cmax, r);
        prop_assert!((g.budget(g.len() - 1) - cmax).abs() <= 1e-9 * cmax);
        prop_assert!(g.budget(0) >= cmin * (1.0 - 1e-12));
        prop_assert!(g.budget(0) / r < cmin * (1.0 + 1e-12));
        for w in g.steps.windows(2) {
            prop_assert!((w[1] / w[0] - r).abs() < 1e-9);
        }
        // The worst-case cumulative-sum ratio respects Theorem 1 algebra.
        let m = g.len();
        if m >= 2 {
            let cum = g.cumulative(m - 1);
            prop_assert!(cum <= g.budget(m - 1) * r / (r - 1.0) * (1.0 + 1e-9));
        }
    }

    /// ESS snap functions: floor-snapping never overshoots, round-snapping
    /// stays within half a (geometric) step.
    #[test]
    fn ess_snapping(f in fractions_2d()) {
        let b = bouquet_2d();
        let ess = &b.workload.ess;
        let p = ess.point_at_fractions(&f);
        let fl = ess.snap_floor(&p);
        for d in 0..ess.d() {
            prop_assert!(ess.sel_at(d, fl[d]) <= p[d] * (1.0 + 1e-9));
        }
        let rd = ess.snap(&p);
        for d in 0..ess.d() {
            let step = (ess.dims[d].hi / ess.dims[d].lo).powf(1.0 / (ess.res[d] as f64 - 1.0));
            let s = ess.sel_at(d, rd[d]);
            prop_assert!(s / p[d] <= step && p[d] / s <= step);
        }
    }

    /// The executor's learning model is budget-monotone: more budget never
    /// teaches less.
    #[test]
    fn learning_is_budget_monotone(f in fractions_2d(), b1 in 0.01f64..1.0, b2 in 0.01f64..1.0) {
        let b = bouquet_2d();
        let w = &b.workload;
        let qa = w.ess.point_at_fractions(&f);
        let ex = plan_bouquet::executor::Executor::new(w.coster());
        let plan = &b.plan(b.plan_ids()[0]).root;
        let full = ex.actual_cost(plan, &qa);
        let (lo_b, hi_b) = (full * b1.min(b2), full * b1.max(b2));
        let resolved = vec![false; w.ess.d()];
        let r_lo = ex.execute_monitored(plan, &qa, &resolved, lo_b, true);
        let r_hi = ex.execute_monitored(plan, &qa, &resolved, hi_b, true);
        let v = |r: &plan_bouquet::executor::RunResult| r.learned.map(|(_, v)| v).unwrap_or(0.0);
        prop_assert!(v(&r_hi) >= v(&r_lo) * (1.0 - 1e-12));
    }
}

/// Non-proptest sanity companion: the 2D bouquet used above is well-formed.
#[test]
fn fixture_is_well_formed() {
    let b = bouquet_2d();
    assert!(b.stats.bouquet_cardinality >= 2);
    assert!(b.stats.num_contours >= 3);
}

/// SelPoint domination is a partial order compatible with the grid.
#[test]
fn selpoint_domination_matches_grid_order() {
    let b = bouquet_2d();
    let ess = &b.workload.ess;
    let a = ess.point(&[3, 7]);
    let c = ess.point(&[5, 7]);
    assert!(a.dominated_by(&c));
    assert!(!c.dominated_by(&a));
    assert!(a.dominated_by(&a));
    let d = SelPoint(vec![a[0], c[1] * 2.0]);
    assert!(!d.dominated_by(&c) || c[1] * 2.0 <= c[1]);
}
