//! Property tests for the tuple engine: all join algorithms must agree on
//! result cardinality for arbitrary seeds and predicates, and budget
//! accounting must be exact.

use proptest::prelude::*;

use plan_bouquet::catalog::tpch;
use plan_bouquet::cost::CostModel;
use plan_bouquet::engine::{Database, Engine, EngineOutcome};
use plan_bouquet::plan::{CmpOp, PlanNode, QueryBuilder, SelSpec};

fn setup(seed: u64, price_cut: f64) -> (Database, plan_bouquet::plan::QuerySpec, CostModel) {
    let cat = tpch::catalog(0.005);
    let db = Database::generate(&cat, seed, &[]);
    let mut qb = QueryBuilder::new(&cat, "prop");
    let p = qb.rel("part");
    let l = qb.rel("lineitem");
    qb.select(
        p,
        "p_retailprice",
        CmpOp::Lt,
        price_cut,
        SelSpec::ErrorProne(0),
    );
    qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
    (db, qb.build(), CostModel::postgresish())
}

fn rows(out: EngineOutcome) -> usize {
    match out {
        EngineOutcome::Completed { rows, .. } => rows,
        EngineOutcome::Aborted { .. } => panic!("unbudgeted run must complete"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// HJ (both orientations), SMJ and INLJ agree on cardinality for any
    /// generated database and any selection constant.
    #[test]
    fn join_algorithms_agree(seed in 0u64..500, cut in 900.0f64..2100.0) {
        let (db, q, m) = setup(seed, cut);
        let eng = Engine::new(&db, &q, &m.p);
        let scan_p = PlanNode::IndexScan { rel: 0, sel_idx: 0 };
        let scan_l = PlanNode::SeqScan { rel: 1 };
        let hj = PlanNode::HashJoin {
            build: Box::new(scan_p.clone()),
            probe: Box::new(scan_l.clone()),
            edges: vec![0],
        };
        let hj_swapped = PlanNode::HashJoin {
            build: Box::new(scan_l.clone()),
            probe: Box::new(scan_p.clone()),
            edges: vec![0],
        };
        let smj = PlanNode::SortMergeJoin {
            left: Box::new(scan_p.clone()),
            right: Box::new(scan_l.clone()),
            edges: vec![0],
            sort_left: true,
            sort_right: true,
        };
        let inl = PlanNode::IndexNLJoin {
            outer: Box::new(scan_p),
            inner_rel: 1,
            edges: vec![0],
        };
        let r0 = rows(eng.execute(&hj, f64::INFINITY));
        prop_assert_eq!(rows(eng.execute(&hj_swapped, f64::INFINITY)), r0);
        prop_assert_eq!(rows(eng.execute(&smj, f64::INFINITY)), r0);
        prop_assert_eq!(rows(eng.execute(&inl, f64::INFINITY)), r0);
    }

    /// Budgeted runs spend exactly min(full cost, budget), and completion is
    /// monotone in the budget.
    #[test]
    fn budget_accounting_is_exact(seed in 0u64..200, frac in 0.05f64..2.0) {
        let (db, q, m) = setup(seed, 1200.0);
        let eng = Engine::new(&db, &q, &m.p);
        let plan = PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan { rel: 0 }),
            probe: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
        };
        let full = eng.execute(&plan, f64::INFINITY).cost();
        let budget = full * frac;
        let out = eng.execute(&plan, budget);
        if frac >= 1.0 {
            prop_assert!(out.completed());
            prop_assert!((out.cost() - full).abs() < 1e-6 * full);
        } else {
            prop_assert!(!out.completed());
            prop_assert!((out.cost() - budget).abs() < 1e-6 * full);
        }
    }

    /// Instrumentation counters never decrease with budget and converge to
    /// the unbudgeted counts.
    #[test]
    fn counters_monotone_in_budget(seed in 0u64..100) {
        let (db, q, m) = setup(seed, 1500.0);
        let eng = Engine::new(&db, &q, &m.p);
        let plan = PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan { rel: 0 }),
            probe: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
        };
        let full = eng.execute(&plan, f64::INFINITY);
        let mut last = 0u64;
        for frac in [0.2, 0.5, 0.8, 1.1] {
            let out = eng.execute(&plan, full.cost() * frac);
            let count = out.instr().nodes[0].output_tuples;
            prop_assert!(count >= last, "join counter shrank: {last} -> {count}");
            last = count;
        }
        prop_assert_eq!(last, full.instr().nodes[0].output_tuples);
    }
}
