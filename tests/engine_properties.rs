//! Property tests for the execution engines: all join algorithms must agree
//! on result cardinality for arbitrary seeds and predicates, budget
//! accounting must be exact, and the vectorized engine must be outcome-
//! identical to the tuple-at-a-time reference — cost, rows, per-node
//! instrumentation and abort point — over random plans and budgets.

use proptest::prelude::*;

use plan_bouquet::catalog::{tpcds, tpch};
use plan_bouquet::cost::CostModel;
use plan_bouquet::engine::{Database, Engine, EngineOutcome};
use plan_bouquet::plan::{CmpOp, PlanNode, QueryBuilder, QuerySpec, SelSpec};

/// Three-relation TPC-H chain (part ⋈ lineitem ⋈ orders) with a selection
/// and a group-by, so every operator the engines implement can appear.
fn setup3(seed: u64, price_cut: f64) -> (Database, QuerySpec, CostModel) {
    let cat = tpch::catalog(0.005);
    let db = Database::generate(&cat, seed, &[]).expect("generate");
    let mut qb = QueryBuilder::new(&cat, "prop3");
    let p = qb.rel("part");
    let l = qb.rel("lineitem");
    let o = qb.rel("orders");
    qb.select(
        p,
        "p_retailprice",
        CmpOp::Lt,
        price_cut,
        SelSpec::ErrorProne(0),
    );
    qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
    qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(1e-4));
    qb.group_by(p, "p_brand");
    (db, qb.build(), CostModel::postgresish())
}

/// Plan-shape pool for the equivalence property: chain and bushy joins,
/// every join algorithm, anti join, aggregation and spill.
fn shape3(idx: usize) -> PlanNode {
    let scan_p = || Box::new(PlanNode::SeqScan { rel: 0 });
    let scan_l = || Box::new(PlanNode::SeqScan { rel: 1 });
    let scan_o = || Box::new(PlanNode::SeqScan { rel: 2 });
    let hj_pl = || {
        Box::new(PlanNode::HashJoin {
            build: scan_p(),
            probe: scan_l(),
            edges: vec![0],
        })
    };
    match idx % 8 {
        0 => PlanNode::HashJoin {
            build: hj_pl(),
            probe: scan_o(),
            edges: vec![1],
        },
        1 => PlanNode::HashJoin {
            build: Box::new(PlanNode::HashJoin {
                build: scan_l(),
                probe: scan_p(),
                edges: vec![0],
            }),
            probe: scan_o(),
            edges: vec![1],
        },
        2 => PlanNode::SortMergeJoin {
            left: hj_pl(),
            right: scan_o(),
            edges: vec![1],
            sort_left: true,
            sort_right: true,
        },
        3 => PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
                inner_rel: 1,
                edges: vec![0],
            }),
            inner_rel: 2,
            edges: vec![1],
        },
        4 => PlanNode::AntiJoin {
            left: scan_p(),
            right: scan_l(),
            edges: vec![0],
        },
        5 => PlanNode::Spill { input: hj_pl() },
        6 => PlanNode::HashAggregate { input: hj_pl() },
        _ => PlanNode::SortMergeJoin {
            left: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
            right: scan_l(),
            edges: vec![0],
            sort_left: false,
            sort_right: true,
        },
    }
}

fn setup(seed: u64, price_cut: f64) -> (Database, plan_bouquet::plan::QuerySpec, CostModel) {
    let cat = tpch::catalog(0.005);
    let db = Database::generate(&cat, seed, &[]).expect("generate");
    let mut qb = QueryBuilder::new(&cat, "prop");
    let p = qb.rel("part");
    let l = qb.rel("lineitem");
    qb.select(
        p,
        "p_retailprice",
        CmpOp::Lt,
        price_cut,
        SelSpec::ErrorProne(0),
    );
    qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
    (db, qb.build(), CostModel::postgresish())
}

fn rows(out: EngineOutcome) -> usize {
    match out {
        EngineOutcome::Completed { rows, .. } => rows,
        EngineOutcome::Aborted { .. } | EngineOutcome::Failed { .. } => {
            panic!("unbudgeted run must complete")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// HJ (both orientations), SMJ and INLJ agree on cardinality for any
    /// generated database and any selection constant.
    #[test]
    fn join_algorithms_agree(seed in 0u64..500, cut in 900.0f64..2100.0) {
        let (db, q, m) = setup(seed, cut);
        let eng = Engine::new(&db, &q, &m.p);
        let scan_p = PlanNode::IndexScan { rel: 0, sel_idx: 0 };
        let scan_l = PlanNode::SeqScan { rel: 1 };
        let hj = PlanNode::HashJoin {
            build: Box::new(scan_p.clone()),
            probe: Box::new(scan_l.clone()),
            edges: vec![0],
        };
        let hj_swapped = PlanNode::HashJoin {
            build: Box::new(scan_l.clone()),
            probe: Box::new(scan_p.clone()),
            edges: vec![0],
        };
        let smj = PlanNode::SortMergeJoin {
            left: Box::new(scan_p.clone()),
            right: Box::new(scan_l.clone()),
            edges: vec![0],
            sort_left: true,
            sort_right: true,
        };
        let inl = PlanNode::IndexNLJoin {
            outer: Box::new(scan_p),
            inner_rel: 1,
            edges: vec![0],
        };
        let r0 = rows(eng.execute(&hj, f64::INFINITY));
        prop_assert_eq!(rows(eng.execute(&hj_swapped, f64::INFINITY)), r0);
        prop_assert_eq!(rows(eng.execute(&smj, f64::INFINITY)), r0);
        prop_assert_eq!(rows(eng.execute(&inl, f64::INFINITY)), r0);
    }

    /// Budgeted runs spend exactly min(full cost, budget), and completion is
    /// monotone in the budget.
    #[test]
    fn budget_accounting_is_exact(seed in 0u64..200, frac in 0.05f64..2.0) {
        let (db, q, m) = setup(seed, 1200.0);
        let eng = Engine::new(&db, &q, &m.p);
        let plan = PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan { rel: 0 }),
            probe: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
        };
        let full = eng.execute(&plan, f64::INFINITY).cost();
        let budget = full * frac;
        let out = eng.execute(&plan, budget);
        if frac >= 1.0 {
            prop_assert!(out.completed());
            prop_assert!((out.cost() - full).abs() < 1e-6 * full);
        } else {
            prop_assert!(!out.completed());
            prop_assert!((out.cost() - budget).abs() < 1e-6 * full);
        }
    }

    /// Instrumentation counters never decrease with budget and converge to
    /// the unbudgeted counts.
    #[test]
    fn counters_monotone_in_budget(seed in 0u64..100) {
        let (db, q, m) = setup(seed, 1500.0);
        let eng = Engine::new(&db, &q, &m.p);
        let plan = PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan { rel: 0 }),
            probe: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
        };
        let full = eng.execute(&plan, f64::INFINITY);
        let mut last = 0u64;
        for frac in [0.2, 0.5, 0.8, 1.1] {
            let out = eng.execute(&plan, full.cost() * frac);
            let count = out.instr().nodes[0].output_tuples;
            prop_assert!(count >= last, "join counter shrank: {last} -> {count}");
            last = count;
        }
        prop_assert_eq!(last, full.instr().nodes[0].output_tuples);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The vectorized engine is outcome-identical to the tuple-at-a-time
    /// reference — same variant, cost bits, row count and per-node
    /// instrumentation — over random TPC-H plan shapes and budgets,
    /// including budgets that abort mid-operator and mid-batch.
    #[test]
    fn vectorized_equals_tuple_tpch(
        seed in 0u64..200,
        cut in 900.0f64..2100.0,
        shape in 0usize..8,
        frac in 0.005f64..1.3,
    ) {
        let (db, q, m) = setup3(seed, cut);
        let eng = Engine::new(&db, &q, &m.p);
        let plan = shape3(shape);
        let full_t = eng.execute_tuple(&plan, f64::INFINITY);
        let full_v = eng.execute_vectorized(&plan, f64::INFINITY);
        prop_assert_eq!(&full_t, &full_v, "full runs diverge (shape {})", shape);
        let budget = full_t.cost() * frac;
        let t = eng.execute_tuple(&plan, budget);
        let v = eng.execute_vectorized(&plan, budget);
        prop_assert_eq!(&t, &v, "budgeted runs diverge (shape {}, frac {})", shape, frac);
        prop_assert_eq!(t.completed(), frac >= 1.0);
    }

    /// Same equivalence on a TPC-DS workload (item ⋈ store_sales), over the
    /// three main join algorithms and abort-inducing budgets.
    #[test]
    fn vectorized_equals_tuple_tpcds(
        seed in 0u64..100,
        cut in 10.0f64..90.0,
        alg in 0usize..3,
        frac in 0.01f64..1.2,
    ) {
        let cat = tpcds::catalog(0.01);
        let db = Database::generate(&cat, seed, &[]).expect("generate");
        let mut qb = QueryBuilder::new(&cat, "prop_ds");
        let i = qb.rel("item");
        let ss = qb.rel("store_sales");
        qb.select(i, "i_current_price", CmpOp::Lt, cut, SelSpec::ErrorProne(0));
        qb.join(i, "i_item_sk", ss, "ss_item_sk", SelSpec::ErrorProne(1));
        let q = qb.build();
        let m = CostModel::postgresish();
        let eng = Engine::new(&db, &q, &m.p);
        let plan = match alg {
            0 => PlanNode::HashJoin {
                build: Box::new(PlanNode::SeqScan { rel: 0 }),
                probe: Box::new(PlanNode::SeqScan { rel: 1 }),
                edges: vec![0],
            },
            1 => PlanNode::SortMergeJoin {
                left: Box::new(PlanNode::SeqScan { rel: 0 }),
                right: Box::new(PlanNode::SeqScan { rel: 1 }),
                edges: vec![0],
                sort_left: true,
                sort_right: true,
            },
            _ => PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
                inner_rel: 1,
                edges: vec![0],
            },
        };
        let full_t = eng.execute_tuple(&plan, f64::INFINITY);
        prop_assert_eq!(&full_t, &eng.execute_vectorized(&plan, f64::INFINITY));
        let budget = full_t.cost() * frac;
        prop_assert_eq!(
            &eng.execute_tuple(&plan, budget),
            &eng.execute_vectorized(&plan, budget),
            "budgeted TPC-DS runs diverge (alg {}, frac {})", alg, frac
        );
    }
}
