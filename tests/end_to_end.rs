//! End-to-end integration: compile-time identification through run-time
//! discovery across representative workloads, validating the paper's core
//! claims on every one.

use plan_bouquet::bouquet::{Bouquet, BouquetConfig};
use plan_bouquet::workloads;

/// Workloads covering 1D–5D, both benchmarks and both cost personalities.
fn sample_workloads() -> Vec<plan_bouquet::bouquet::Workload> {
    vec![
        workloads::eq_1d(),
        workloads::h_q8a_2d(1.0),
        workloads::h_q5_3d(),
        workloads::ds_q96_3d(),
        workloads::h_q5b_3d_com(),
    ]
}

#[test]
fn identification_pipeline_is_consistent() {
    for w in sample_workloads() {
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        // Grading brackets the PIC.
        assert!(
            b.grading.budget(0) >= b.stats.cmin * (1.0 - 1e-9),
            "{}",
            w.name
        );
        let last = b.grading.budget(b.grading.len() - 1);
        assert!(last >= b.stats.cmax * (1.0 - 1e-9), "{}", w.name);
        // Every contour is non-empty and its plans are bouquet members.
        let members = b.plan_ids();
        for c in &b.contours {
            assert!(!c.points.is_empty(), "{} IC{}", w.name, c.id);
            assert!(!c.plan_set.is_empty());
            for p in &c.plan_set {
                assert!(members.contains(p));
            }
            // Assignment targets are on the contour's plan set.
            for a in &c.assignment {
                assert!(c.plan_set.contains(a));
            }
        }
        // ρ consistency.
        assert_eq!(
            b.rho(),
            b.contours.iter().map(|c| c.density()).max().unwrap()
        );
    }
}

#[test]
fn discovery_completes_within_bound_everywhere() {
    for w in sample_workloads() {
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let bound = b.mso_bound();
        let n = w.ess.num_points();
        // Sample the grid (every point for small grids).
        let step = (n / 500).max(1);
        for li in (0..n).step_by(step) {
            let qa = w.ess.point(&w.ess.unlinear(li));
            for run in [b.run_basic(&qa).unwrap(), b.run_optimized(&qa).unwrap()] {
                assert!(run.completed(), "{} at {li}", w.name);
                let so = run.suboptimality(b.pic_cost_at(li));
                assert!(
                    so <= bound * (1.0 + 1e-9),
                    "{} at {li}: SubOpt {so} > bound {bound}",
                    w.name
                );
            }
        }
    }
}

#[test]
fn execution_strategy_is_repeatable_and_estimate_free() {
    let w = workloads::h_q5_3d();
    // Two bouquets identified independently produce identical strategies.
    let b1 = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    let b2 = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    for f in [[0.3, 0.3, 0.3], [0.9, 0.1, 0.5], [0.7, 0.7, 0.7]] {
        let qa = w.ess.point_at_fractions(&f);
        assert_eq!(b1.run_basic(&qa).unwrap(), b2.run_basic(&qa).unwrap());
        assert_eq!(
            b1.run_optimized(&qa).unwrap(),
            b2.run_optimized(&qa).unwrap()
        );
    }
}

#[test]
fn off_grid_locations_are_also_discovered() {
    // qa need not be a grid point; the guarantee extends because contours
    // cover the continuous interior (PCM + dominance).
    let w = workloads::h_q8a_2d(1.0);
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    for f in [[0.33, 0.77], [0.011, 0.93], [0.5001, 0.4999]] {
        let qa = w.ess.point_at_fractions(&f);
        let run = b.run_basic(&qa).unwrap();
        assert!(run.completed());
        // Compare against the true (re-optimized) optimal cost at qa.
        let opt = w.optimal_cost(&qa);
        assert!(
            run.suboptimality(opt) <= b.mso_bound() * (1.0 + 0.05),
            "off-grid SubOpt {} at {:?}",
            run.suboptimality(opt),
            f
        );
    }
}

#[test]
fn monotone_workloads_reject_nothing_but_bad_configs() {
    let w = workloads::eq_1d();
    assert!(Bouquet::identify(
        &w,
        &BouquetConfig {
            r: 0.5,
            ..Default::default()
        }
    )
    .is_err());
    assert!(Bouquet::identify(
        &w,
        &BouquetConfig {
            lambda: -1.0,
            ..Default::default()
        }
    )
    .is_err());
    assert!(Bouquet::identify(&w, &BouquetConfig::default()).is_ok());
}

#[test]
fn deeper_locations_cost_more_to_discover() {
    let w = workloads::eq_1d();
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    let mut last = 0.0;
    for f in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let qa = w.ess.point_at_fractions(&[f]);
        let run = b.run_basic(&qa).unwrap();
        assert!(
            run.total_cost >= last * 0.99,
            "discovery cost should grow with depth"
        );
        last = run.total_cost;
    }
}
