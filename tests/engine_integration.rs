//! Integration between the cost-unit simulator and the tuple engine: the
//! two execution substrates must agree on the decisions that matter to the
//! bouquet (completion vs abort at matched budgets, selectivity monitoring
//! directions), differing only by a bounded model-error factor.

use plan_bouquet::bouquet::{Bouquet, BouquetConfig};
use plan_bouquet::cost::{Coster, SelPoint};
use plan_bouquet::engine::{ColumnOverride, Database, Engine};
use plan_bouquet::executor::Executor;
use plan_bouquet::workloads;

fn setup() -> (plan_bouquet::bouquet::Workload, Database) {
    let w = workloads::h_q8a_2d(0.01);
    let db = Database::generate(&w.catalog, 42, &[]).expect("generate");
    (w, db)
}

/// The engine's full-execution cost tracks the cost model's prediction at
/// the measured actual selectivities within a modest δ band, across every
/// bouquet plan. (This is the premise of Section 3.4.)
#[test]
fn engine_costs_track_model_within_delta() {
    let (w, db) = setup();
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    // Measured actual location.
    let mut qa = vec![0.0; 2];
    for (ji, j) in w.query.joins.iter().enumerate() {
        if let Some(d) = j.selectivity.error_dim() {
            qa[d] = db
                .actual_join_selectivity(&w.query, ji)
                .clamp(w.ess.dims[d].lo, w.ess.dims[d].hi);
        }
    }
    let engine = Engine::new(&db, &w.query, &w.model.p);
    let coster = Coster::new(&w.catalog, &w.query, &w.model);
    let mut max_delta = 0.0f64;
    for pid in b.plan_ids() {
        let plan = &b.plan(pid).root;
        let actual = engine.execute(plan, f64::INFINITY).cost();
        let modeled = coster.plan_cost(plan, &qa);
        let ratio = actual / modeled;
        let delta = if ratio >= 1.0 {
            ratio - 1.0
        } else {
            1.0 / ratio - 1.0
        };
        max_delta = max_delta.max(delta);
    }
    assert!(
        max_delta < 2.5,
        "engine/model divergence too large: δ = {max_delta:.2}"
    );
}

/// Completion decisions agree between the simulator and the engine once the
/// simulator's budget is padded by the observed δ.
#[test]
fn completion_decisions_agree_modulo_delta() {
    let (w, db) = setup();
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    let mut qa = vec![0.0; 2];
    for (ji, j) in w.query.joins.iter().enumerate() {
        if let Some(d) = j.selectivity.error_dim() {
            qa[d] = db
                .actual_join_selectivity(&w.query, ji)
                .clamp(w.ess.dims[d].lo, w.ess.dims[d].hi);
        }
    }
    let qa = SelPoint(qa);
    let engine = Engine::new(&db, &w.query, &w.model.p);
    let ex = Executor::new(Coster::new(&w.catalog, &w.query, &w.model));
    for pid in b.plan_ids() {
        let plan = &b.plan(pid).root;
        let modeled = ex.actual_cost(plan, &qa);
        let engine_cost = engine.execute(plan, f64::INFINITY).cost();
        // With a budget well above both costs, both complete; with a budget
        // well below both, both abort.
        let generous = 4.0 * modeled.max(engine_cost);
        let stingy = 0.1 * modeled.min(engine_cost);
        assert!(ex.execute(plan, &qa, generous).completed());
        assert!(engine.execute(plan, generous).completed());
        assert!(!ex.execute(plan, &qa, stingy).completed());
        assert!(!engine.execute(plan, stingy).completed());
    }
}

/// The engine's observed selectivities respect the first-quadrant invariant
/// (never exceed the truth) and converge to the truth on full executions.
#[test]
fn engine_observed_selectivity_first_quadrant() {
    let (w, db) = setup();
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    let engine = Engine::new(&db, &w.query, &w.model.p);
    let s_true0 = db.actual_join_selectivity(&w.query, 0);
    for pid in b.plan_ids() {
        let plan = &b.plan(pid).root;
        let full = engine.execute(plan, f64::INFINITY);
        for frac in [0.05, 0.3, 0.8] {
            let partial = engine.execute(plan, full.cost() * frac);
            if let Some(s) = partial.instr().observed_selectivity(plan, &w.query, &db, 0) {
                assert!(
                    s <= s_true0 * 1.05,
                    "plan {pid} frac {frac}: observed {s} > true {s_true0}"
                );
            }
        }
    }
}

/// Bouquet discovery over the engine completes and returns the same result
/// cardinality as direct execution of the oracle plan.
#[test]
fn engine_bouquet_result_matches_oracle() {
    let (w, db) = setup();
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    let engine = Engine::new(&db, &w.query, &w.model.p);

    // Oracle result cardinality.
    let mut qa = vec![0.0; 2];
    for (ji, j) in w.query.joins.iter().enumerate() {
        if let Some(d) = j.selectivity.error_dim() {
            qa[d] = db
                .actual_join_selectivity(&w.query, ji)
                .clamp(w.ess.dims[d].lo, w.ess.dims[d].hi);
        }
    }
    let oracle_plan = w.optimizer().optimize(&SelPoint(qa)).plan;
    let oracle = engine.execute(&oracle_plan.root, f64::INFINITY);
    let plan_bouquet::engine::EngineOutcome::Completed {
        rows: oracle_rows, ..
    } = oracle
    else {
        panic!("oracle must complete");
    };

    // Basic bouquet loop over the engine.
    let mut rows = None;
    'outer: for c in &b.contours {
        for &pid in &c.plan_set {
            if let plan_bouquet::engine::EngineOutcome::Completed { rows: r, .. } =
                engine.execute(&b.plan(pid).root, c.budget)
            {
                rows = Some(r);
                break 'outer;
            }
        }
    }
    assert_eq!(
        rows,
        Some(oracle_rows),
        "bouquet must return the oracle's result"
    );
}

/// Data generation honours overrides; selectivity measurement reflects them.
#[test]
fn overrides_shift_measured_selectivities() {
    let w = workloads::h_q8a_2d(0.01);
    let plain = Database::generate(&w.catalog, 5, &[]).expect("generate");
    let skewed = Database::generate(
        &w.catalog,
        5,
        &[
            ColumnOverride::EffectiveNdv {
                table: "part".into(),
                column: "p_partkey".into(),
                ndv: 50,
            },
            ColumnOverride::EffectiveNdv {
                table: "lineitem".into(),
                column: "l_partkey".into(),
                ndv: 50,
            },
        ],
    )
    .expect("generate");
    let s_plain = plain.actual_join_selectivity(&w.query, 0);
    let s_skewed = skewed.actual_join_selectivity(&w.query, 0);
    assert!(
        s_skewed > 5.0 * s_plain,
        "skew should raise join selectivity: {s_plain} -> {s_skewed}"
    );
}
