//! Substrate-equivalence regression suite.
//!
//! The `ExecutionSubstrate` refactor promises that the simulator-substrate
//! drivers are **byte-identical** to the pre-refactor `run_basic` /
//! `run_optimized` implementations. The golden snapshots in
//! `tests/golden/driver_runs.json` were captured from the pre-refactor
//! drivers (commit 2047fe9) on the EQ_1D / 2D_H_Q8A / 3D_DS_Q15 regression
//! workloads; every run here must serialize to exactly those bytes.
//!
//! Regenerating the goldens (only legitimate when the *executor semantics*
//! deliberately change, never to paper over a driver regression):
//!
//! ```text
//! cargo test --test substrate_equivalence regenerate_goldens -- --ignored
//! ```

use std::collections::BTreeMap;
use std::sync::OnceLock;

use plan_bouquet::bouquet::{
    Bouquet, BouquetConfig, BouquetRun, EngineSubstrate, SimulatorSubstrate,
};
use plan_bouquet::engine::Database;
use plan_bouquet::faults::FaultInjector;
use plan_bouquet::workloads;
use proptest::prelude::*;

const GOLDEN_PATH: &str = "tests/golden/driver_runs.json";

fn bouquets() -> &'static Vec<Bouquet> {
    static B: OnceLock<Vec<Bouquet>> = OnceLock::new();
    B.get_or_init(|| {
        [
            workloads::eq_1d(),
            workloads::h_q8a_2d(0.01),
            workloads::ds_q15_3d(),
        ]
        .iter()
        .map(|w| Bouquet::identify(w, &BouquetConfig::default()).unwrap())
        .collect()
    })
}

/// Deterministic per-workload probe fractions: axis extremes, an interior
/// lattice, and off-grid locations that exercise `snap_floor`.
fn probe_fractions(d: usize) -> Vec<Vec<f64>> {
    let axes: &[f64] = match d {
        1 => &[0.0, 0.13, 0.37, 0.5, 0.63, 0.86, 1.0],
        2 => &[0.05, 0.35, 0.65, 0.95],
        _ => &[0.1, 0.55, 0.9],
    };
    let mut out: Vec<Vec<f64>> = vec![Vec::new()];
    for _ in 0..d {
        out = out
            .into_iter()
            .flat_map(|p| {
                axes.iter().map(move |&a| {
                    let mut q = p.clone();
                    q.push(a);
                    q
                })
            })
            .collect();
    }
    out
}

/// Every (workload, driver, location) run, keyed and serialized for exact
/// byte comparison. The golden file holds one `key\tjson` line per run.
fn current_runs() -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for b in bouquets() {
        let d = b.workload.ess.d();
        for fracs in probe_fractions(d) {
            let qa = b.workload.ess.point_at_fractions(&fracs);
            for optimized in [false, true] {
                let driver = if optimized { "opt" } else { "basic" };
                let run = if optimized {
                    b.run_optimized(&qa).unwrap()
                } else {
                    b.run_basic(&qa).unwrap()
                };
                map.insert(
                    format!("{}/{driver}/{fracs:?}", b.workload.name),
                    serde_json::to_string(&run).unwrap(),
                );
            }
        }
    }
    map
}

fn parse_goldens(raw: &str) -> BTreeMap<String, String> {
    raw.lines()
        .filter(|l| !l.is_empty())
        .map(|l| {
            let (k, v) = l.split_once('\t').expect("golden line must be key\\tjson");
            (k.to_string(), v.to_string())
        })
        .collect()
}

#[test]
fn simulator_drivers_match_pre_refactor_goldens() {
    let golden_raw = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run the regenerate_goldens test first");
    let golden = parse_goldens(&golden_raw);
    let current = current_runs();
    assert_eq!(
        golden.keys().collect::<Vec<_>>(),
        current.keys().collect::<Vec<_>>(),
        "golden key set diverged"
    );
    for (key, json) in &current {
        assert_eq!(
            json, &golden[key],
            "driver output diverged from pre-refactor golden at {key}"
        );
        // The snapshot is a valid, lossless BouquetRun serialization.
        let back: BouquetRun = serde_json::from_str(json).unwrap();
        assert_eq!(&serde_json::to_string(&back).unwrap(), json);
    }
}

/// At a random location, the public entry points (`run_basic` /
/// `run_optimized`) and an explicitly-constructed simulator substrate fed
/// through the generic drivers (`run_basic_on` / `run_optimized_on`) must be
/// bit-identical — the convenience wrappers add nothing to the control flow.
fn assert_generic_equals_entry_point(b: &Bouquet, fracs: &[f64]) {
    let qa = b.workload.ess.point_at_fractions(fracs);
    for optimized in [false, true] {
        let entry = if optimized {
            b.run_optimized(&qa).unwrap()
        } else {
            b.run_basic(&qa).unwrap()
        };
        let mut sub = SimulatorSubstrate::new(b, &qa, FaultInjector::none()).unwrap();
        let generic = if optimized {
            b.run_optimized_on(&mut sub).unwrap()
        } else {
            b.run_basic_on(&mut sub).unwrap()
        };
        assert_eq!(
            serde_json::to_string(&entry).unwrap(),
            serde_json::to_string(&generic).unwrap(),
            "entry point and generic driver diverged (optimized={optimized}, fracs={fracs:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// EQ_1D: random locations never separate the wrapper from the generic
    /// driver. Combined with the golden test above (wrapper == pre-refactor
    /// bytes on the lattice), this pins the generic path to the pre-refactor
    /// behaviour across the whole space.
    #[test]
    fn generic_basic_matches_entry_point_1d(f in 0.0f64..=1.0) {
        assert_generic_equals_entry_point(&bouquets()[0], &[f]);
    }

    /// 2D_H_Q8A: same property on the paper's run-time workload.
    #[test]
    fn generic_basic_matches_entry_point_2d(f in [0.0f64..=1.0, 0.0f64..=1.0]) {
        assert_generic_equals_entry_point(&bouquets()[1], &f);
    }

    /// 3D_DS_Q15: same property on the 3D error space.
    #[test]
    fn generic_basic_matches_entry_point_3d(
        f in [0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0],
    ) {
        assert_generic_equals_entry_point(&bouquets()[2], &f);
    }
}

/// Engine-substrate runs are deterministic across repeats: a fresh substrate
/// over the same generated data replays every driver bit-identically, down
/// to the produced row count.
#[test]
fn engine_substrate_runs_are_deterministic_across_repeats() {
    let b = &bouquets()[1];
    let db = Database::generate(&b.workload.catalog, 11, &[]).unwrap();
    for optimized in [false, true] {
        let run_once = || {
            let mut sub = EngineSubstrate::new(b, &db, FaultInjector::none());
            let run = if optimized {
                b.run_optimized_on(&mut sub).unwrap()
            } else {
                b.run_basic_on(&mut sub).unwrap()
            };
            (serde_json::to_string(&run).unwrap(), sub.result_rows())
        };
        let first = run_once();
        let second = run_once();
        assert_eq!(
            first, second,
            "engine replay diverged (optimized={optimized})"
        );
    }
}

#[test]
#[ignore = "writes tests/golden/driver_runs.json from the current drivers"]
fn regenerate_goldens() {
    let mut out = String::new();
    for (k, v) in current_runs() {
        out.push_str(&k);
        out.push('\t');
        out.push_str(&v);
        out.push('\n');
    }
    std::fs::create_dir_all("tests/golden").unwrap();
    std::fs::write(GOLDEN_PATH, out).unwrap();
}
