//! Resume ≡ restart equivalence suite.
//!
//! Checkpoint/resume promises that a resumed execution is **observationally
//! bit-identical** to a restarted one — same outcome variant, same cost
//! bits, same rows, same abort point, same learned selectivities — and only
//! the *paid* cost shrinks, by exactly the reused units reported next to
//! the outcome. These tests pin that contract at both substrates:
//!
//! * the vectorized engine (`Engine::execute_resumable` vs
//!   `Engine::execute` over a budget ladder on every operator shape),
//! * the cost-unit simulator (`run_basic_resumable` / `run_optimized_resumable`
//!   vs the plain drivers over a lattice of true locations),
//!
//! plus a chaos block: corrupting every checkpoint's integrity checksum
//! must make resume fall back to restart semantics — identical outcomes,
//! zero credit, never a double charge — and re-capture healthy snapshots
//! as the corrupted runs complete.

use std::sync::OnceLock;

use plan_bouquet::bouquet::{
    Bouquet, BouquetConfig, BouquetRun, EngineSubstrate, SimulatorSubstrate,
};
use plan_bouquet::engine::{Database, Engine, EngineOutcome, ResumeBook};
use plan_bouquet::faults::FaultInjector;
use plan_bouquet::plan::PlanNode;
use plan_bouquet::workloads;
use proptest::prelude::*;

/// Every operator shape the engine implements, over part ⋈ lineitem ⋈
/// orders (relations 0, 1, 2; join edge 0 is p⋈l, edge 1 is l⋈o).
fn plan_suite() -> Vec<(&'static str, PlanNode)> {
    let hj_pl = || PlanNode::HashJoin {
        build: Box::new(PlanNode::SeqScan { rel: 0 }),
        probe: Box::new(PlanNode::SeqScan { rel: 1 }),
        edges: vec![0],
    };
    vec![
        (
            "hash_join_chain",
            PlanNode::HashJoin {
                build: Box::new(hj_pl()),
                probe: Box::new(PlanNode::SeqScan { rel: 2 }),
                edges: vec![1],
            },
        ),
        (
            "merge_join_top",
            PlanNode::SortMergeJoin {
                left: Box::new(hj_pl()),
                right: Box::new(PlanNode::SeqScan { rel: 2 }),
                edges: vec![1],
                sort_left: true,
                sort_right: true,
            },
        ),
        (
            "index_nl_chain",
            PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::IndexNLJoin {
                    outer: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
                    inner_rel: 1,
                    edges: vec![0],
                }),
                inner_rel: 2,
                edges: vec![1],
            },
        ),
        (
            "anti_join",
            PlanNode::AntiJoin {
                left: Box::new(PlanNode::SeqScan { rel: 0 }),
                right: Box::new(PlanNode::SeqScan { rel: 1 }),
                edges: vec![0],
            },
        ),
        (
            "hash_aggregate",
            PlanNode::HashAggregate {
                input: Box::new(hj_pl()),
            },
        ),
        (
            "spill_chain",
            PlanNode::Spill {
                input: Box::new(hj_pl()),
            },
        ),
    ]
}

/// The contour-style ascending budget ladder resume is built for: the same
/// plan re-granted ever larger budgets until it completes.
const LADDER: [f64; 5] = [0.02, 0.1, 0.4, 0.75, 1.0];

fn engine_fixture() -> &'static (plan_bouquet::bouquet::Workload, Database) {
    static F: OnceLock<(plan_bouquet::bouquet::Workload, Database)> = OnceLock::new();
    F.get_or_init(|| {
        let w = workloads::h_q8a_2d(0.01);
        let db = Database::generate(&w.catalog, 42, &[]).unwrap();
        (w, db)
    })
}

/// Identical observable outcome, down to the cost bits.
fn assert_outcome_bit_identical(label: &str, plain: &EngineOutcome, resumed: &EngineOutcome) {
    assert_eq!(plain, resumed, "{label}: outcome diverged under resume");
    assert_eq!(
        plain.cost().to_bits(),
        resumed.cost().to_bits(),
        "{label}: cost bits diverged under resume"
    );
}

/// Engine ladder: re-running a plan at the next contour budget resumes from
/// checkpoints of its completed operator prefix; the observable outcome at
/// every rung stays bit-identical to a cold restart and the paid cost
/// (`cost − reused`) never exceeds the restart cost.
#[test]
fn engine_ladder_resume_is_bit_identical_to_restart() {
    let (w, db) = engine_fixture();
    let engine = Engine::new(db, &w.query, &w.model.p);
    let mut total_reused = 0.0;
    for (name, plan) in plan_suite() {
        let full = engine.execute(&plan, f64::INFINITY).cost();
        let mut book = ResumeBook::new();
        for frac in LADDER {
            let budget = full * frac;
            let plain = engine.execute(&plan, budget);
            let (resumed, reused) = engine.execute_resumable(&plan, budget, &mut book);
            assert_outcome_bit_identical(&format!("{name} @ {frac}"), &plain, &resumed);
            assert!(
                (0.0..=plain.cost() * (1.0 + 1e-9)).contains(&reused),
                "{name} @ {frac}: reused {reused} out of range (restart cost {})",
                plain.cost()
            );
            total_reused += reused;
        }
        assert!(book.checkpoints() > 0, "{name}: no checkpoints captured");
    }
    assert!(
        total_reused > 0.0,
        "reuse never engaged across the whole ladder suite"
    );
}

/// A plan that already completed is replayed entirely from its checkpoint:
/// the second full-budget run pays (almost) nothing but still reports the
/// restart-semantics outcome.
#[test]
fn completed_plan_replays_from_checkpoint_for_free() {
    let (w, db) = engine_fixture();
    let engine = Engine::new(db, &w.query, &w.model.p);
    let (name, plan) = plan_suite().remove(0);
    let mut book = ResumeBook::new();
    let (first, reused0) = engine.execute_resumable(&plan, f64::INFINITY, &mut book);
    assert_eq!(reused0, 0.0, "{name}: cold run cannot reuse anything");
    let (second, reused1) = engine.execute_resumable(&plan, f64::INFINITY, &mut book);
    assert_outcome_bit_identical(name, &first, &second);
    assert!(
        reused1 > 0.0 && reused1 <= first.cost(),
        "{name}: full replay should be served from checkpoints (reused {reused1})"
    );
    assert!(book.hits() > 0);
}

/// Chaos: corrupted checkpoints must fail validation and fall back to a
/// cold restart — bit-identical outcome, zero credit, never a double
/// charge — and the corrupted entries are re-captured healthy, so the next
/// run reuses again.
#[test]
fn corrupt_checkpoints_fall_back_to_restart_and_recapture() {
    let (w, db) = engine_fixture();
    let engine = Engine::new(db, &w.query, &w.model.p);
    for (name, plan) in plan_suite() {
        let full = engine.execute(&plan, f64::INFINITY).cost();
        let mut book = ResumeBook::new();
        for frac in LADDER {
            engine.execute_resumable(&plan, full * frac, &mut book);
        }
        book.corrupt_all();
        let plain = engine.execute(&plan, full);
        let (fallback, reused) = engine.execute_resumable(&plan, full, &mut book);
        assert_outcome_bit_identical(&format!("{name} corrupted"), &plain, &fallback);
        assert_eq!(
            reused, 0.0,
            "{name}: corrupt checkpoints must yield zero credit, not a stale replay"
        );
        // The corrupted run re-captured healthy snapshots as it completed.
        let (again, reused2) = engine.execute_resumable(&plan, full, &mut book);
        assert_outcome_bit_identical(&format!("{name} recaptured"), &plain, &again);
        assert!(
            reused2 > 0.0,
            "{name}: post-corruption run should have re-captured checkpoints"
        );
    }
}

fn bouquet_2d() -> &'static Bouquet {
    static B: OnceLock<Bouquet> = OnceLock::new();
    B.get_or_init(|| {
        Bouquet::identify(&workloads::h_q8a_2d(0.01), &BouquetConfig::default()).unwrap()
    })
}

/// Resume must never change *what is learned or decided*, only *what is
/// paid*: identical (contour, plan, budget) sequence, identical abort /
/// completion / spill / learned / fault record per execution, per-execution
/// paid ≤ restart spend, and total_cost + reused ≈ the restart total.
fn assert_resume_matches_plain(label: &str, plain: &BouquetRun, resumed: &BouquetRun, reused: f64) {
    assert_eq!(
        plain.trace.len(),
        resumed.trace.len(),
        "{label}: trace length diverged"
    );
    for (p, r) in plain.trace.iter().zip(&resumed.trace) {
        assert_eq!(
            (p.contour, p.plan, p.budget.to_bits()),
            (r.contour, r.plan, r.budget.to_bits()),
            "{label}: decision sequence diverged"
        );
        assert_eq!(
            (p.completed, p.spilled, &p.learned, &p.error),
            (r.completed, r.spilled, &r.learned, &r.error),
            "{label}: observed behaviour diverged"
        );
        assert!(
            r.spent <= p.spent * (1.0 + 1e-9),
            "{label}: resumed execution paid more than restart ({} > {})",
            r.spent,
            p.spent
        );
    }
    // The outcome's `final_cost` is what the final execution *paid*, so it
    // legitimately shrinks under resume; plan and variant may not change.
    use plan_bouquet::bouquet::ExecutionOutcome as EO;
    match (&plain.outcome, &resumed.outcome) {
        (
            EO::Completed {
                final_plan: p,
                final_cost: pc,
            },
            EO::Completed {
                final_plan: r,
                final_cost: rc,
            },
        ) => {
            assert_eq!(p, r, "{label}: final plan diverged");
            assert!(rc <= &(pc * (1.0 + 1e-9)), "{label}: final cost grew");
        }
        (p, r) => assert_eq!(p, r, "{label}: outcome diverged"),
    }
    assert!(
        (resumed.total_cost + reused - plain.total_cost).abs() <= 1e-9 * plain.total_cost.max(1.0),
        "{label}: paid + reused must equal the restart total \
         ({} + {reused} vs {})",
        resumed.total_cost,
        plain.total_cost
    );
}

fn check_simulator_resume_at(fracs: &[f64]) {
    let b = bouquet_2d();
    let qa = b.workload.ess.point_at_fractions(fracs);
    let plain = b.run_basic(&qa).unwrap();
    let (resumed, stats) = b.run_basic_resumable(&qa).unwrap();
    assert_resume_matches_plain(
        &format!("basic @ {fracs:?}"),
        &plain,
        &resumed,
        stats.reused_cost,
    );

    let plain_opt = b.run_optimized(&qa).unwrap();
    let (resumed_opt, stats_opt) = b.run_optimized_resumable(&qa).unwrap();
    assert_resume_matches_plain(
        &format!("optimized @ {fracs:?}"),
        &plain_opt,
        &resumed_opt,
        stats_opt.reused_cost,
    );
}

/// Deterministic lattice over the 2D error space, including the axis
/// extremes where the discovery ladder is longest (most reuse).
#[test]
fn simulator_resume_preserves_decisions_on_lattice() {
    let mut reuse_seen = false;
    for &x in &[0.05, 0.5, 0.95] {
        for &y in &[0.05, 0.5, 0.95] {
            check_simulator_resume_at(&[x, y]);
            let qa = bouquet_2d().workload.ess.point_at_fractions(&[x, y]);
            let (_, stats) = bouquet_2d().run_basic_resumable(&qa).unwrap();
            reuse_seen |= stats.reused_cost > 0.0;
        }
    }
    assert!(
        reuse_seen,
        "checkpoint reuse never engaged anywhere on the lattice"
    );
}

/// Simulator chaos: corrupting the substrate's checkpoints between two
/// drives leaves the second run's decisions identical and never charges
/// more than restart semantics.
#[test]
fn simulator_corrupt_checkpoints_never_double_charge() {
    let b = bouquet_2d();
    let qa = b.workload.ess.point_at_fractions(&[0.8, 0.8]);
    let plain = b.run_basic(&qa).unwrap();

    let mut sub = SimulatorSubstrate::new(b, &qa, FaultInjector::none()).unwrap();
    let (warm, _) = b.run_basic_resumable_on(&mut sub).unwrap();
    sub.corrupt_checkpoints();
    let (after, stats) = b.run_basic_resumable_on(&mut sub).unwrap();
    assert_resume_matches_plain("corrupted simulator", &plain, &warm, {
        // warm run's own reuse: reconstruct from the cost gap.
        plain.total_cost - warm.total_cost
    });
    for (p, r) in plain.trace.iter().zip(&after.trace) {
        assert_eq!(
            (p.contour, p.plan, p.budget.to_bits()),
            (r.contour, r.plan, r.budget.to_bits())
        );
        assert!(
            r.spent <= p.spent * (1.0 + 1e-9),
            "double charge after corruption"
        );
    }
    assert!(after.total_cost <= plain.total_cost * (1.0 + 1e-9));
    // Fresh snapshots recorded by the fallback runs keep stats coherent.
    assert!(stats.checkpoints > 0);
}

/// Engine substrate chaos: same fallback property on real tuples.
#[test]
fn engine_substrate_corrupt_checkpoints_fall_back() {
    let b = bouquet_2d();
    let (_, db) = engine_fixture();
    let mut plain_sub = EngineSubstrate::new(b, db, FaultInjector::none());
    let plain = b.run_basic_on(&mut plain_sub).unwrap();

    let mut sub = EngineSubstrate::new(b, db, FaultInjector::none());
    let (warm, warm_stats) = b.run_basic_resumable_on(&mut sub).unwrap();
    assert_resume_matches_plain("engine warm", &plain, &warm, warm_stats.reused_cost);
    sub.corrupt_checkpoints();
    let (after, _) = b.run_basic_resumable_on(&mut sub).unwrap();
    for (p, r) in plain.trace.iter().zip(&after.trace) {
        assert_eq!(
            (p.contour, p.plan, p.budget.to_bits()),
            (r.contour, r.plan, r.budget.to_bits())
        );
        assert!(
            r.spent <= p.spent * (1.0 + 1e-9),
            "double charge after corruption"
        );
    }
    assert!(after.total_cost <= plain.total_cost * (1.0 + 1e-9));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random true locations never separate the resumable drivers from the
    /// plain ones in anything but paid cost.
    #[test]
    fn resume_preserves_decisions_at_random_locations(
        f in [0.0f64..=1.0, 0.0f64..=1.0],
    ) {
        check_simulator_resume_at(&f);
    }
}
