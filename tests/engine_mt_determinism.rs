//! Multicore determinism matrix for the morsel-driven engine.
//!
//! The morsel coordinator promises that `EngineOutcome` — variant, cost
//! bits, row count, per-node instrumentation, abort point — is **bit
//! identical** at every worker count, because batch compute is pure and the
//! coordinator replays the serial ledger event sequence in ascending batch
//! order regardless of which worker produced which batch.
//!
//! CI runs the deterministic matrix tests at `ENGINE_JOBS={1,2,4,8}` (a
//! comma list of worker counts, overriding the default matrix); the
//! proptests draw random plans, budgets — including mid-operator budget
//! crossings — and worker counts on TPC-H and TPC-DS, plus spilled-prefix
//! resolution through [`EngineSubstrate`].

use std::sync::OnceLock;

use proptest::prelude::*;

use plan_bouquet::bouquet::{
    Bouquet, BouquetConfig, BouquetRun, EngineSubstrate, ExecutionSubstrate,
};
use plan_bouquet::catalog::{tpcds, tpch};
use plan_bouquet::cost::{CostModel, Parallelism};
use plan_bouquet::engine::{Database, Engine};
use plan_bouquet::faults::FaultInjector;
use plan_bouquet::plan::{CmpOp, PlanNode, QueryBuilder, QuerySpec, SelSpec};
use plan_bouquet::workloads;

/// Morsel threshold low enough that the SF 0.005 test relations actually
/// fan out over workers instead of taking the serial gate.
const TEST_MORSEL_MIN: usize = 64;

/// Worker-count matrix: `ENGINE_JOBS` env var as a comma list (CI sets
/// `1,2,4,8`), defaulting to the same spread locally.
fn worker_counts() -> Vec<usize> {
    match std::env::var("ENGINE_JOBS") {
        Ok(s) => {
            let v: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect();
            if v.is_empty() {
                vec![1, 2, 4, 8]
            } else {
                v
            }
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// Three-relation TPC-H chain (part ⋈ lineitem ⋈ orders) with a selection
/// and a group-by — same shape pool as `engine_properties.rs`, so every
/// operator the morsel drivers parallelize can appear.
fn setup3(seed: u64, price_cut: f64) -> (Database, QuerySpec, CostModel) {
    let cat = tpch::catalog(0.005);
    let db = Database::generate(&cat, seed, &[]).expect("generate");
    let mut qb = QueryBuilder::new(&cat, "mt3");
    let p = qb.rel("part");
    let l = qb.rel("lineitem");
    let o = qb.rel("orders");
    qb.select(
        p,
        "p_retailprice",
        CmpOp::Lt,
        price_cut,
        SelSpec::ErrorProne(0),
    );
    qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
    qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(1e-4));
    qb.group_by(p, "p_brand");
    (db, qb.build(), CostModel::postgresish())
}

/// Plan-shape pool: chain and bushy hash joins, sort-merge, nested index
/// nested-loops, anti join, spill and aggregation.
fn shape3(idx: usize) -> PlanNode {
    let scan_p = || Box::new(PlanNode::SeqScan { rel: 0 });
    let scan_l = || Box::new(PlanNode::SeqScan { rel: 1 });
    let scan_o = || Box::new(PlanNode::SeqScan { rel: 2 });
    let hj_pl = || {
        Box::new(PlanNode::HashJoin {
            build: scan_p(),
            probe: scan_l(),
            edges: vec![0],
        })
    };
    match idx % 8 {
        0 => PlanNode::HashJoin {
            build: hj_pl(),
            probe: scan_o(),
            edges: vec![1],
        },
        1 => PlanNode::HashJoin {
            build: Box::new(PlanNode::HashJoin {
                build: scan_l(),
                probe: scan_p(),
                edges: vec![0],
            }),
            probe: scan_o(),
            edges: vec![1],
        },
        2 => PlanNode::SortMergeJoin {
            left: hj_pl(),
            right: scan_o(),
            edges: vec![1],
            sort_left: true,
            sort_right: true,
        },
        3 => PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
                inner_rel: 1,
                edges: vec![0],
            }),
            inner_rel: 2,
            edges: vec![1],
        },
        4 => PlanNode::AntiJoin {
            left: scan_p(),
            right: scan_l(),
            edges: vec![0],
        },
        5 => PlanNode::Spill { input: hj_pl() },
        6 => PlanNode::HashAggregate { input: hj_pl() },
        _ => PlanNode::SortMergeJoin {
            left: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
            right: scan_l(),
            edges: vec![0],
            sort_left: false,
            sort_right: true,
        },
    }
}

/// TPC-DS item ⋈ store_sales setup with the join algorithm selected by
/// `alg`.
fn setup_ds(seed: u64, cut: f64) -> (Database, QuerySpec, CostModel) {
    let cat = tpcds::catalog(0.01);
    let db = Database::generate(&cat, seed, &[]).expect("generate");
    let mut qb = QueryBuilder::new(&cat, "mt_ds");
    let i = qb.rel("item");
    let ss = qb.rel("store_sales");
    qb.select(i, "i_current_price", CmpOp::Lt, cut, SelSpec::ErrorProne(0));
    qb.join(i, "i_item_sk", ss, "ss_item_sk", SelSpec::ErrorProne(1));
    (db, qb.build(), CostModel::postgresish())
}

fn plan_ds(alg: usize) -> PlanNode {
    match alg % 3 {
        0 => PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan { rel: 0 }),
            probe: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
        },
        1 => PlanNode::SortMergeJoin {
            left: Box::new(PlanNode::SeqScan { rel: 0 }),
            right: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
            sort_left: true,
            sort_right: true,
        },
        _ => PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
            inner_rel: 1,
            edges: vec![0],
        },
    }
}

fn parallel_engine<'a>(
    db: &'a Database,
    q: &'a QuerySpec,
    m: &'a CostModel,
    workers: usize,
) -> Engine<'a> {
    Engine::new(db, q, &m.p)
        .with_parallelism(Parallelism::new(workers))
        .with_morsel_threshold(TEST_MORSEL_MIN)
}

/// The deterministic matrix the CI smoke job runs at `ENGINE_JOBS=1,2,4,8`:
/// every plan shape × a budget ladder straddling each operator phase must
/// produce bit-identical `EngineOutcome`s at every worker count.
#[test]
fn worker_matrix_is_bit_identical_tpch() {
    let jobs = worker_counts();
    for seed in [3u64, 17] {
        let (db, q, m) = setup3(seed, 1400.0);
        let serial = Engine::new(&db, &q, &m.p);
        for shape in 0..8 {
            let plan = shape3(shape);
            let full = serial.execute(&plan, f64::INFINITY);
            let mut expect = vec![(f64::INFINITY, full.clone())];
            for frac in [0.75, 0.4, 0.1, 0.02] {
                let b = full.cost() * frac;
                expect.push((b, serial.execute(&plan, b)));
            }
            for &n in &jobs {
                let eng = parallel_engine(&db, &q, &m, n);
                for (budget, reference) in &expect {
                    let got = eng.execute(&plan, *budget);
                    assert_eq!(
                        &got, reference,
                        "outcome diverged: seed {seed} shape {shape} budget {budget} workers {n}"
                    );
                }
            }
        }
    }
}

/// Same matrix on TPC-DS (item ⋈ store_sales) across the three main join
/// algorithms.
#[test]
fn worker_matrix_is_bit_identical_tpcds() {
    let jobs = worker_counts();
    let (db, q, m) = setup_ds(11, 55.0);
    let serial = Engine::new(&db, &q, &m.p);
    for alg in 0..3 {
        let plan = plan_ds(alg);
        let full = serial.execute(&plan, f64::INFINITY);
        let mut expect = vec![(f64::INFINITY, full.clone())];
        for frac in [0.6, 0.15, 0.03] {
            let b = full.cost() * frac;
            expect.push((b, serial.execute(&plan, b)));
        }
        for &n in &jobs {
            let eng = parallel_engine(&db, &q, &m, n);
            for (budget, reference) in &expect {
                assert_eq!(
                    &eng.execute(&plan, *budget),
                    reference,
                    "outcome diverged: alg {alg} budget {budget} workers {n}"
                );
            }
        }
    }
}

/// Shared h_q8a_2d bouquet + database for the substrate-level tests —
/// identification is deterministic and expensive, so build once.
fn sub_fixture() -> &'static (Bouquet, Database) {
    static F: OnceLock<(Bouquet, Database)> = OnceLock::new();
    F.get_or_init(|| {
        let w = workloads::h_q8a_2d(0.005);
        let b = Bouquet::identify(&w, &BouquetConfig::default()).expect("identify");
        let db = Database::generate(&w.catalog, 7, &[]).expect("generate");
        (b, db)
    })
}

/// The optimized (Figure 13) driver — spilled prefixes, qrun monitoring,
/// quadrant pruning — produces the identical `BouquetRun` and result rows
/// through a parallel engine substrate at every worker count.
#[test]
fn optimized_driver_identical_across_workers() {
    let (b, db) = sub_fixture();
    let run_at = |workers: usize| -> (BouquetRun, usize) {
        let mut sub = EngineSubstrate::new(b, db, FaultInjector::none());
        if workers > 1 {
            sub = sub
                .with_engine_parallelism(Parallelism::new(workers))
                .with_engine_morsel_threshold(TEST_MORSEL_MIN);
        }
        let run = b.run_optimized_on(&mut sub).expect("driver run");
        (run, sub.result_rows().unwrap_or(0))
    };
    let (serial_run, serial_rows) = run_at(1);
    assert!(serial_run.completed(), "serial optimized run must complete");
    for n in worker_counts() {
        if n <= 1 {
            continue;
        }
        let (run, rows) = run_at(n);
        assert_eq!(run, serial_run, "BouquetRun diverged at {n} workers");
        assert_eq!(rows, serial_rows, "result rows diverged at {n} workers");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random TPC-H plans × budgets (including mid-operator crossings) ×
    /// worker counts: the parallel engine is outcome-identical to serial.
    #[test]
    fn parallel_equals_serial_tpch(
        seed in 0u64..120,
        cut in 900.0f64..2100.0,
        shape in 0usize..8,
        frac in 0.005f64..1.3,
        workers in 2usize..9,
    ) {
        let (db, q, m) = setup3(seed, cut);
        let serial = Engine::new(&db, &q, &m.p);
        let par = parallel_engine(&db, &q, &m, workers);
        let plan = shape3(shape);
        let full = serial.execute(&plan, f64::INFINITY);
        prop_assert_eq!(
            &par.execute(&plan, f64::INFINITY), &full,
            "full runs diverge (shape {}, workers {})", shape, workers
        );
        let budget = full.cost() * frac;
        prop_assert_eq!(
            &par.execute(&plan, budget),
            &serial.execute(&plan, budget),
            "budgeted runs diverge (shape {}, frac {}, workers {})", shape, frac, workers
        );
    }

    /// Same property on TPC-DS over the three main join algorithms.
    #[test]
    fn parallel_equals_serial_tpcds(
        seed in 0u64..60,
        cut in 10.0f64..90.0,
        alg in 0usize..3,
        frac in 0.01f64..1.2,
        workers in 2usize..9,
    ) {
        let (db, q, m) = setup_ds(seed, cut);
        let serial = Engine::new(&db, &q, &m.p);
        let par = parallel_engine(&db, &q, &m, workers);
        let plan = plan_ds(alg);
        let full = serial.execute(&plan, f64::INFINITY);
        prop_assert_eq!(&par.execute(&plan, f64::INFINITY), &full);
        let budget = full.cost() * frac;
        prop_assert_eq!(
            &par.execute(&plan, budget),
            &serial.execute(&plan, budget),
            "budgeted TPC-DS runs diverge (alg {}, frac {}, workers {})", alg, frac, workers
        );
    }

    /// Spilled-prefix resolution through `EngineSubstrate`: monitored
    /// executions — spilled and plain — observe the same selectivity
    /// bounds, resolutions and spend through a parallel engine as through
    /// the serial one, for random bouquet plans, budgets and worker counts.
    #[test]
    fn spilled_prefix_matches_serial_through_substrate(
        pick in 0usize..64,
        frac in 0.05f64..1.0,
        workers in 2usize..9,
        spill_pick in 0usize..2,
    ) {
        let spilled = spill_pick == 1;
        let (b, db) = sub_fixture();
        let contour = &b.contours[pick % b.contours.len()];
        let pid = contour.plan_set[pick % contour.plan_set.len()];
        let budget = contour.budget * frac;
        let d = b.workload.ess.d();
        let resolved = vec![false; d];
        let mut serial = EngineSubstrate::new(b, db, FaultInjector::none());
        let mut par = EngineSubstrate::new(b, db, FaultInjector::none())
            .with_engine_parallelism(Parallelism::new(workers))
            .with_engine_morsel_threshold(TEST_MORSEL_MIN);
        let s = serial.execute_monitored(pid, &resolved, budget, spilled);
        let p = par.execute_monitored(pid, &resolved, budget, spilled);
        prop_assert_eq!(
            &p, &s,
            "monitored outcome diverged (pid {}, frac {}, workers {}, spilled {})",
            pid, frac, workers, spilled
        );
        if spilled {
            prop_assert!(s.spilled && !s.completed);
        }
    }
}
