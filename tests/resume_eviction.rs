//! Byte-capped checkpoint books: eviction never breaks resume ≡ restart.
//!
//! The LRU byte caps on [`CostResumeBook`] (simulator) and [`ResumeBook`]
//! (engine) bound a long-lived process's checkpoint memory — the serving
//! layer keys a book per (tenant, workload, location) and cannot let any of
//! them grow without bound. The contract under eviction is strict:
//!
//! * a capped book only ever loses **credit** — the observable outcome of
//!   every execution stays bit-identical to both the uncapped book and a
//!   cold restart;
//! * `spent + reused` still equals the restart-semantics cost exactly;
//! * the cap is actually enforced (evictions observed, retained bytes /
//!   entries bounded).

use std::sync::OnceLock;

use plan_bouquet::bouquet::{
    Bouquet, BouquetConfig, ExecutionSubstrate, RobustConfig, SimulatorSubstrate,
};
use plan_bouquet::engine::{Database, Engine, ResumeBook};
use plan_bouquet::faults::FaultInjector;
use plan_bouquet::plan::PlanNode;
use plan_bouquet::workloads;

/// A tiny cap: enough bytes for a couple of checkpoints, far fewer than a
/// full discovery run captures.
const TINY_CAP: usize = 256;

// ---------------------------------------------------------------------------
// Engine book (ResumeBook)
// ---------------------------------------------------------------------------

fn engine_fixture() -> &'static (plan_bouquet::bouquet::Workload, Database) {
    static F: OnceLock<(plan_bouquet::bouquet::Workload, Database)> = OnceLock::new();
    F.get_or_init(|| {
        let w = workloads::h_q8a_2d(0.01);
        let db = Database::generate(&w.catalog, 42, &[]).expect("generate");
        (w, db)
    })
}

/// The contour-style ascending budget ladder, twice over (the second pass
/// replays against whatever checkpoints survived the cap).
const LADDER: [f64; 6] = [0.1, 0.4, 0.75, 1.0, 0.4, 1.0];

#[test]
fn engine_ladder_with_tiny_cap_is_bit_identical_and_evicts() {
    let (w, db) = engine_fixture();
    let engine = Engine::new(db, &w.query, &w.model.p);
    let plan = PlanNode::HashJoin {
        build: Box::new(PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan { rel: 0 }),
            probe: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
        }),
        probe: Box::new(PlanNode::SeqScan { rel: 2 }),
        edges: vec![1],
    };
    let full = engine.execute(&plan, f64::INFINITY).cost();

    let mut unbounded = ResumeBook::new();
    let mut capped = ResumeBook::with_byte_cap(TINY_CAP);
    let mut reused_unbounded = 0.0;
    let mut reused_capped = 0.0;
    for frac in LADDER {
        let budget = full * frac;
        let plain = engine.execute(&plan, budget);
        let (r_unb, c_unb) = engine.execute_resumable(&plan, budget, &mut unbounded);
        let (r_cap, c_cap) = engine.execute_resumable(&plan, budget, &mut capped);
        assert_eq!(
            plain, r_unb,
            "@{frac}: unbounded book diverged from restart"
        );
        assert_eq!(plain, r_cap, "@{frac}: capped book diverged from restart");
        assert_eq!(
            plain.cost().to_bits(),
            r_cap.cost().to_bits(),
            "@{frac}: cost bits diverged under eviction"
        );
        reused_unbounded += c_unb;
        reused_capped += c_cap;
    }
    assert!(
        reused_unbounded > 0.0,
        "unbounded book never engaged — the ladder is not exercising resume"
    );
    assert!(
        reused_capped <= reused_unbounded,
        "eviction cannot create credit: capped {reused_capped} > unbounded {reused_unbounded}"
    );
    assert!(
        capped.evictions() > 0,
        "tiny cap never evicted ({} checkpoints, {} bytes retained)",
        capped.checkpoints(),
        capped.bytes()
    );
    assert!(
        capped.bytes() <= TINY_CAP,
        "cap not enforced: {} bytes retained under a {TINY_CAP}-byte cap",
        capped.bytes()
    );
    assert_eq!(unbounded.evictions(), 0, "unbounded book must never evict");
}

// ---------------------------------------------------------------------------
// Simulator book (CostResumeBook) through the robust driver
// ---------------------------------------------------------------------------

fn bouquet_1d() -> &'static Bouquet {
    static B: OnceLock<Bouquet> = OnceLock::new();
    B.get_or_init(|| {
        Bouquet::identify(&workloads::eq_1d(), &BouquetConfig::default()).expect("identify")
    })
}

/// Decision sequence + outcome, the bits resume must never change. The
/// outcome's `final_cost` is the final execution's *paid* cost — the one
/// number resume is allowed (required) to shrink — so it is normalized
/// away; the plan choice and every (contour, plan, budget) decision are
/// compared exactly.
fn decisions(run: &plan_bouquet::bouquet::RobustRun) -> (String, Vec<(usize, usize, f64)>) {
    use plan_bouquet::bouquet::ExecutionOutcome as O;
    let outcome = match &run.run.outcome {
        O::Completed { final_plan, .. } => format!("completed:{final_plan}"),
        O::Degraded { final_plan, .. } => format!("degraded:{final_plan}"),
        O::BudgetExhausted { .. } => "budget-exhausted".into(),
        O::Cancelled { .. } => "cancelled".into(),
    };
    (
        outcome,
        run.run
            .trace
            .iter()
            .map(|e| (e.contour, e.plan, e.budget))
            .collect(),
    )
}

#[test]
fn robust_driver_with_tiny_cap_matches_restart_at_every_location() {
    let b = bouquet_1d();
    // One retained entry: every additional checkpoint evicts the previous.
    let sim_cap = 48;

    let mut evictions_seen = 0u64;
    let mut reuse_seen = false;
    for (frac, optimized) in [
        (0.15, false),
        (0.35, true),
        (0.55, false),
        (0.8, true),
        (0.97, false),
    ] {
        let cfg_plain = RobustConfig {
            optimized,
            ..Default::default()
        };
        let cfg_resume = RobustConfig {
            optimized,
            resume: true,
            ..Default::default()
        };
        let qa = b.workload.ess.point_at_fractions(&[frac]);
        let mk = || SimulatorSubstrate::new(b, &qa, FaultInjector::none()).expect("substrate");

        let mut plain_sub = mk();
        let plain = b.run_robust_on(&mut plain_sub, &cfg_plain).expect("plain");

        let mut unb_sub = mk();
        let unbounded = b
            .run_robust_on(&mut unb_sub, &cfg_resume)
            .expect("unbounded");

        let mut cap_sub = mk();
        cap_sub.set_resume_byte_cap(sim_cap);
        let capped = b.run_robust_on(&mut cap_sub, &cfg_resume).expect("capped");

        // Outcome and decision sequence: identical across plain, resumed
        // and capped-resumed.
        assert_eq!(
            decisions(&plain),
            decisions(&unbounded),
            "@{frac}: resume changed the run"
        );
        assert_eq!(
            decisions(&plain),
            decisions(&capped),
            "@{frac}: eviction changed the run"
        );

        // Cost identity: spent + reused == restart cost, for both books.
        let restart = plain.run.total_cost;
        for (label, run, sub) in [
            ("unbounded", &unbounded, &unb_sub),
            ("capped", &capped, &cap_sub),
        ] {
            let reused = sub.resume_stats().reused_cost;
            let paid = run.run.total_cost + reused;
            assert!(
                (paid - restart).abs() <= 1e-9 * restart.abs().max(1.0),
                "@{frac} {label}: spent+reused {paid} != restart {restart}"
            );
        }
        // Eviction only sheds credit, never creates it.
        assert!(
            cap_sub.resume_stats().reused_cost <= unb_sub.resume_stats().reused_cost + 1e-9,
            "@{frac}: capped book reused more than the unbounded book"
        );
        reuse_seen |= unb_sub.resume_stats().reused_cost > 0.0;
        evictions_seen += cap_sub
            .take_resume_book()
            .map(|book| book.evictions())
            .unwrap_or(0);
    }
    assert!(reuse_seen, "resume never engaged across the location sweep");
    assert!(
        evictions_seen > 0,
        "the tiny cap never evicted across the location sweep"
    );
}
