//! Integration properties of the content-addressed bouquet cache, driven
//! through the public facade: a warm hit must be **byte-identical** to a
//! from-scratch identification for arbitrary (workload, λ, r) combinations
//! across both benchmark families, and damaged or stale entries must be
//! evicted and rebuilt — never trusted.

use proptest::prelude::*;

use plan_bouquet::bouquet::{
    persist, Bouquet, BouquetCache, BouquetConfig, CacheOutcome, Workload,
};
use plan_bouquet::catalog::tpch;
use plan_bouquet::cost::{Ess, Parallelism};
use plan_bouquet::workloads;

/// Rebuild a workload on a coarser uniform grid so property cases stay
/// cheap while still exercising full identification.
fn coarse(w: Workload, res: usize) -> Workload {
    let ess = Ess::uniform(w.ess.dims.clone(), res);
    Workload::new(
        w.name.clone(),
        w.catalog.clone(),
        w.query.clone(),
        ess,
        w.model.clone(),
    )
}

/// Fresh per-test cache directory; removed on drop so parallel test
/// binaries never poison each other.
struct TmpCache(std::path::PathBuf);

impl TmpCache {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("pb-cache-it-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TmpCache(dir)
    }
}

impl Drop for TmpCache {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The single `.pbq` entry in a cache directory.
fn entry_file(dir: &std::path::Path) -> std::path::PathBuf {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "pbq"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one cache entry");
    entries.pop().unwrap()
}

fn workload_for(family: usize) -> Workload {
    match family {
        0 => coarse(workloads::h_q8a_2d(1.0), 12),
        _ => coarse(workloads::ds_q15_3d(), 6),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cold miss then warm hit, across TPC-H and TPC-DS workloads and a
    /// spread of (λ, r): the served bouquet must serialize byte-for-byte
    /// identically to `Bouquet::identify` run from scratch.
    #[test]
    fn cache_hit_is_byte_identical_to_fresh_build(
        family in 0usize..2,
        lambda_ix in 0usize..4,
        r_ix in 0usize..3,
    ) {
        let lambda = [0.0f64, 0.1, 0.2, 0.3][lambda_ix];
        let r = [1.5f64, 2.0, 3.0][r_ix];
        let w = workload_for(family);
        let cfg = BouquetConfig { lambda, r, ..BouquetConfig::default() };
        let tmp = TmpCache::new(&format!("prop{family}"));
        let cache = BouquetCache::new(&tmp.0).unwrap();

        let (_, first) = cache.get_or_identify(&w, &cfg, Parallelism::serial()).unwrap();
        prop_assert!(matches!(first, CacheOutcome::Miss { .. }));

        let (warm, second) = cache.get_or_identify(&w, &cfg, Parallelism::serial()).unwrap();
        prop_assert!(matches!(second, CacheOutcome::Hit { .. }));

        let fresh = Bouquet::identify(&w, &cfg).unwrap();
        prop_assert_eq!(
            persist::to_json(&warm).unwrap(),
            persist::to_json(&fresh).unwrap(),
            "cached bouquet diverged from a from-scratch identification"
        );
    }
}

#[test]
fn corrupted_and_truncated_entries_are_evicted_and_rebuilt() {
    let w = coarse(workloads::h_q8a_2d(1.0), 12);
    let cfg = BouquetConfig::default();
    let tmp = TmpCache::new("damage");
    let cache = BouquetCache::new(&tmp.0).unwrap();
    let (reference, _) = cache
        .get_or_identify(&w, &cfg, Parallelism::serial())
        .unwrap();
    let reference = persist::to_json(&reference).unwrap();

    // Bit-flip mid-payload: the checksum catches it, the entry is evicted,
    // and the rebuild matches the reference byte-for-byte.
    let path = entry_file(&tmp.0);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let (rebuilt, outcome) = cache
        .get_or_identify(&w, &cfg, Parallelism::serial())
        .unwrap();
    assert!(
        matches!(outcome, CacheOutcome::Miss { .. }),
        "corrupt entry must not be served"
    );
    assert_eq!(persist::to_json(&rebuilt).unwrap(), reference);

    // Truncation, as a crashed writer would leave behind.
    let path = entry_file(&tmp.0);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    let (rebuilt, outcome) = cache
        .get_or_identify(&w, &cfg, Parallelism::serial())
        .unwrap();
    assert!(
        matches!(outcome, CacheOutcome::Miss { .. }),
        "truncated entry must not be served"
    );
    assert_eq!(persist::to_json(&rebuilt).unwrap(), reference);

    // A clean entry is back in place after the repairs.
    let (_, outcome) = cache
        .get_or_identify(&w, &cfg, Parallelism::serial())
        .unwrap();
    assert!(matches!(outcome, CacheOutcome::Hit { .. }));
}

#[test]
fn future_format_version_is_evicted_not_parsed() {
    let w = coarse(workloads::h_q8a_2d(1.0), 12);
    let cfg = BouquetConfig::default();
    let tmp = TmpCache::new("version");
    let cache = BouquetCache::new(&tmp.0).unwrap();
    cache
        .get_or_identify(&w, &cfg, Parallelism::serial())
        .unwrap();

    // Bump the on-disk format version (bytes 4..8 after the magic). The
    // checksum no longer matches either, but whichever check fires the
    // entry must be treated as unusable, evicted, and rebuilt.
    let path = entry_file(&tmp.0);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4] = bytes[4].wrapping_add(1);
    std::fs::write(&path, &bytes).unwrap();
    let (_, outcome) = cache
        .get_or_identify(&w, &cfg, Parallelism::serial())
        .unwrap();
    assert!(matches!(outcome, CacheOutcome::Miss { .. }));
    let (_, outcome) = cache
        .get_or_identify(&w, &cfg, Parallelism::serial())
        .unwrap();
    assert!(matches!(outcome, CacheOutcome::Hit { .. }));
}

#[test]
fn statistics_drift_invalidates_and_refreshes_incrementally() {
    let base = coarse(workloads::h_q8a_2d(1.0), 12);
    let cfg = BouquetConfig::default();
    let tmp = TmpCache::new("drift");
    let cache = BouquetCache::new(&tmp.0).unwrap();
    let (_, outcome) = cache
        .get_or_identify(&base, &cfg, Parallelism::serial())
        .unwrap();
    assert!(matches!(outcome, CacheOutcome::Miss { .. }));

    // Same query skeleton over drifted statistics: the cached entry is
    // stale, so the cache must re-identify (incrementally, reusing what it
    // can) and the result must equal a fresh build on the new statistics.
    let drifted = Workload::new(
        base.name.clone(),
        tpch::catalog(1.05),
        base.query.clone(),
        base.ess.clone(),
        base.model.clone(),
    );
    let (refreshed, outcome) = cache
        .get_or_identify(&drifted, &cfg, Parallelism::serial())
        .unwrap();
    match outcome {
        CacheOutcome::Refreshed { incremental, .. } => {
            assert!(
                !incremental.diagram.full_rebuild,
                "mild drift should reuse the old diagram"
            );
        }
        other => panic!("expected Refreshed after statistics drift, got {other:?}"),
    }
    let fresh = Bouquet::identify(&drifted, &cfg).unwrap();
    assert_eq!(
        persist::to_json(&refreshed).unwrap(),
        persist::to_json(&fresh).unwrap()
    );

    // The stale sibling was evicted: exactly one entry remains, and it
    // serves the drifted workload as a plain hit.
    entry_file(&tmp.0);
    let (_, outcome) = cache
        .get_or_identify(&drifted, &cfg, Parallelism::serial())
        .unwrap();
    assert!(matches!(outcome, CacheOutcome::Hit { .. }));
}
