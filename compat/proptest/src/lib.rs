//! Offline subset of `proptest`: the `proptest!` runner macro, `Strategy`
//! trait, range/array/char-class strategies, `collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are drawn from a seeded PRNG (the seed
//! is a hash of the test name, so runs are reproducible) and failures are
//! reported via plain `assert!` panics — there is no shrinking.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        // Closed upper bound: scale a [0,1) draw onto [lo, hi] by using the
        // next-representable span; clamping keeps it exact at the ends.
        let (lo, hi) = (*self.start(), *self.end());
        (lo + rng.random::<f64>() * (hi - lo) * (1.0 + 1e-15)).clamp(lo, hi)
    }
}

/// `[strat_a, strat_b]` — fixed-size array of strategies, as upstream.
impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// `any` strategy
// ---------------------------------------------------------------------------

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! any_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random::<$t>()
            }
        }
    )*};
}
any_strategy!(bool, u32, u64, f64);

// ---------------------------------------------------------------------------
// String strategies: simple char-class regex `[...]{lo,hi}`
// ---------------------------------------------------------------------------

/// String literals act as generation patterns. Only the shape
/// `[chars]{lo,hi}` (single char class with `a-z` ranges, fixed or bounded
/// repetition) is supported — the subset this workspace uses.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (alphabet, lo, hi) = parse_char_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
        let len = rng.random_range(lo..=hi);
        (0..len)
            .map(|_| alphabet[rng.random_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_char_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = rep.parse().ok()?;
            (n, n)
        }
    };
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, lo, hi))
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{SizeBounds, Strategy};
    use rand::rngs::StdRng;
    use rand::RngExt;

    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// `collection::vec(strategy, 1..6)` — a Vec with length drawn from the
    /// size range.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.lo..=self.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Size specifications accepted by `collection::vec` (inclusive bounds).
pub trait SizeBounds {
    fn bounds(&self) -> (usize, usize);
}

impl SizeBounds for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeBounds for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SizeBounds for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing used by the `proptest!` macro expansion
// ---------------------------------------------------------------------------

/// Deterministic per-test seed: FNV-1a over the test's name.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

pub fn new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::new_rng($crate::seed_for(stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property body. Panics (no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_arrays(x in 1u64..10, f in [0.0f64..=1.0, 0.0f64..=1.0]) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f[0]) && (0.0..=1.0).contains(&f[1]));
        }

        #[test]
        fn vec_and_string(v in crate::collection::vec(any::<bool>(), 1..6), s in "[a-c0-2]{0,8}") {
            prop_assert!((1..=5).contains(&v.len()));
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| "abc012".contains(c)));
        }
    }
}
