//! Offline subset of the `rand` crate: a seedable PRNG with the rand 0.9+
//! method names (`random`, `random_range`) the workspace uses.
//!
//! `StdRng` here is xoshiro256++ seeded through splitmix64 — not the same
//! stream as upstream's ChaCha12 `StdRng`, but the workspace only relies on
//! determinism-given-seed, never on a specific stream.

/// Core RNG trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of upstream's trait).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// xoshiro256++ (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through splitmix64 so similar seeds diverge.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Types samplable uniformly from the full RNG output (`rng.random::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via `rng.random_range(range)`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, n)` via Lemire-style widening multiply with a
/// rejection pass to remove modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods in the style of rand 0.9 (`Rng`), under the name the
/// workspace imports.
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=5u64);
            assert!(y <= 5);
            let z = rng.random_range(-4..9i64);
            assert!((-4..9).contains(&z));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
