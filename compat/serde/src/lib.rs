//! Offline drop-in subset of `serde`.
//!
//! The growth container has no network access to crates.io, so this crate
//! provides the small slice of serde's surface the workspace actually uses:
//! `Serialize`/`Deserialize` traits (routed through an owned [`Value`] tree
//! rather than serde's zero-copy visitor machinery) plus derive macros that
//! understand `#[serde(default)]`, `#[serde(skip)]` and
//! `#[serde(from = "T", into = "T")]`. The JSON data model and field
//! ordering match what `serde_json` emits for the same types: struct fields
//! in declaration order, externally-tagged enums, newtype structs as their
//! inner value.

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree — the intermediate representation between
/// typed data and text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers (kept apart from `Float` so 64-bit ids and
    /// seeds round-trip exactly).
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Key–value pairs in insertion (= struct declaration) order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a key in an object's pair list (linear scan; objects here are
/// struct-sized).
pub fn find<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

// Identity impls: a `Value` serializes to itself, so dynamically-shaped
// documents (benchmark reports, baselines) can round-trip through
// `serde_json::{to_string, from_str}` without a typed schema.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    _ => return Err(DeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(u).map_err(|_| DeError::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i < 0 { Value::Int(i) } else { Value::UInt(i as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::new("integer out of i64 range"))?,
                    _ => return Err(DeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(i).map_err(|_| DeError::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
int_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
float_impl!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_arr().ok_or_else(|| DeError::new("expected 2-tuple"))?;
        if a.len() != 2 {
            return Err(DeError::new("expected 2-tuple"));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_arr().ok_or_else(|| DeError::new("expected 3-tuple"))?;
        if a.len() != 3 {
            return Err(DeError::new("expected 3-tuple"));
        }
        Ok((
            A::from_value(&a[0])?,
            B::from_value(&a[1])?,
            C::from_value(&a[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::new("expected object (map)"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}
