//! Offline JSON text layer for the serde compat crates: `to_string` and
//! `from_str` over the owned [`serde::Value`] tree.
//!
//! Output conventions match upstream `serde_json`'s compact writer: no
//! whitespace, struct fields in declaration order, floats via Rust's
//! shortest-roundtrip `Display` (no exponent for the magnitudes this
//! workspace produces), non-finite floats as `null`.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization error (infallible in practice for in-memory writing, but
/// kept for signature compatibility with upstream).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize an instance of `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.i)));
    }
    T::from_value(&v).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // serde_json serializes non-finite floats as null.
        out.push_str("null");
        return;
    }
    // Rust's Display for f64 is the shortest string that round-trips, which
    // is exactly what serde_json emits — except Display drops the ".0" on
    // integral values, which serde_json keeps.
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.i) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at offset {}", self.i))
    }

    fn expect_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.expect_lit("null", Value::Null),
            Some(b't') => self.expect_lit("true", Value::Bool(true)),
            Some(b'f') => self.expect_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.i += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.i += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.i += 1;
            self.skip_ws();
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.i += 1; // opening '"'
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0C}'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low surrogate.
                                if self.bytes.get(self.i) == Some(&b'\\')
                                    && self.bytes.get(self.i + 1) == Some(&b'u')
                                {
                                    self.i += 2;
                                    let lo = self.parse_hex4()?;
                                    let cp = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Bulk fast path: copy the run of plain ASCII bytes up
                    // to the next quote, escape, or non-ASCII byte in one
                    // push, instead of re-validating UTF-8 per character.
                    let rest = &self.bytes[self.i..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\' || b >= 0x80)
                        .unwrap_or(rest.len());
                    if run > 0 {
                        // The run is pure ASCII by construction.
                        s.push_str(std::str::from_utf8(&rest[..run]).expect("ascii run"));
                        self.i += run;
                    } else {
                        // Non-ASCII: decode one UTF-8 scalar (at most 4 bytes).
                        let chunk = &rest[..rest.len().min(4)];
                        let c = match std::str::from_utf8(chunk) {
                            Ok(t) => t.chars().next(),
                            Err(e) if e.valid_up_to() > 0 => {
                                std::str::from_utf8(&chunk[..e.valid_up_to()])
                                    .expect("validated prefix")
                                    .chars()
                                    .next()
                            }
                            Err(_) => None,
                        };
                        let c = c.ok_or_else(|| self.err("invalid utf-8"))?;
                        s.push(c);
                        self.i += c.len_utf8();
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.i..self.i + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.i += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.i += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.i]).unwrap();
        if !is_float {
            // Integers keep their exact representation; fall back to f64 on
            // overflow (matching serde_json's arbitrary-precision-off mode).
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::Int(i));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string(&"a\"b\\c\n".to_string()).unwrap(),
            r#""a\"b\\c\n""#
        );
        let x: f64 = from_str("2.0").unwrap();
        assert_eq!(x, 2.0);
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é😀");
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<u64> = vec![1, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<u64>("42 x").is_err());
    }
}
