//! Offline subset of `criterion`: enough harness to run `cargo bench` with
//! the workspace's existing bench files. Each benchmark is timed with a
//! short calibration pass followed by `sample_size` samples; the median
//! time per iteration is printed. No plots, no statistics beyond the
//! median/min/max, no baseline comparison.

use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 30;
/// Target wall-clock per sample during measurement.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);

/// Bench context passed to `|b| b.iter(...)` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export for bench files that import `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into(), self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Upstream parses CLI args here; this subset ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Calibrate: how many iterations fit in the target sample time?
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{id:<50} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Declare a group of benchmark functions, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
