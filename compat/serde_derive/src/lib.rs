//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the offline serde
//! subset — no `syn`/`quote`, since the build container cannot reach
//! crates.io. The input item is parsed directly from the raw
//! `proc_macro::TokenStream` and the impl is emitted as a source string
//! (then re-parsed into a `TokenStream`).
//!
//! Supported shapes (everything this workspace serializes):
//! - structs with named fields, tuple (newtype) structs, unit structs
//! - enums with unit, tuple and struct variants (externally tagged)
//! - field attributes `#[serde(default)]`, `#[serde(skip)]`
//! - container attribute `#[serde(from = "T", into = "T")]`
//!
//! Generics are deliberately unsupported: the macro panics with a clear
//! message rather than silently emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
    /// `#[serde(from = "T")]` — deserialize via `T` then `From<T>`.
    from: Option<String>,
    /// `#[serde(into = "T")]` — serialize by converting to `T` (needs Clone).
    into: Option<String>,
}

enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: bool,
    skip: bool,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    i: usize,
}

#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    skip: bool,
    from: Option<String>,
    into: Option<String>,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        self.i += 1;
        t
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    /// Consume leading attributes, folding any `#[serde(...)]` into `attrs`.
    fn skip_attrs(&mut self, attrs: &mut SerdeAttrs) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next(); // '#'
                         // Inner attributes (`#![...]`) do not occur in derive input.
            if let Some(TokenTree::Group(g)) = self.next() {
                scan_serde_attr(&g.stream(), attrs);
            }
        }
    }

    /// Consume `pub`, `pub(crate)`, `pub(in ...)` if present.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }

    /// Consume a type (everything up to a top-level `,`), tracking `<...>`
    /// nesting so commas inside generic arguments don't terminate early.
    fn skip_type(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn scan_serde_attr(attr: &TokenStream, out: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = attr.clone().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // #[doc], #[derive], #[cfg], ...
    }
    let Some(TokenTree::Group(args)) = toks.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        let TokenTree::Ident(key) = &args[i] else {
            i += 1;
            continue;
        };
        let key = key.to_string();
        let value = match (args.get(i + 1), args.get(i + 2)) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                i += 3;
                Some(lit.to_string().trim_matches('"').to_string())
            }
            _ => {
                i += 1;
                None
            }
        };
        match (key.as_str(), value) {
            ("default", _) => out.default = true,
            ("skip", _) => out.skip = true,
            ("from", Some(t)) => out.from = Some(t),
            ("into", Some(t)) => out.into = Some(t),
            (other, _) => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
        // Skip a separating comma if present.
        if let Some(TokenTree::Punct(p)) = args.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    let mut container = SerdeAttrs::default();
    c.skip_attrs(&mut container);
    c.skip_vis();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported");
        }
    }
    let kind = match (kw.as_str(), c.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Tuple(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Kind::Unit,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Enum(parse_variants(g.stream()))
        }
        (kw, other) => panic!("serde_derive: cannot parse {kw} {name} body at {other:?}"),
    };
    Item {
        name,
        kind,
        from: container.from,
        into: container.into,
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    while !c.at_end() {
        let mut attrs = SerdeAttrs::default();
        c.skip_attrs(&mut attrs);
        if c.at_end() {
            break;
        }
        c.skip_vis();
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        c.skip_type();
        c.next(); // the separating ',' (or end)
        fields.push(Field {
            name,
            default: attrs.default,
            skip: attrs.skip,
        });
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut n = 0;
    while !c.at_end() {
        let mut attrs = SerdeAttrs::default();
        c.skip_attrs(&mut attrs);
        if c.at_end() {
            break;
        }
        c.skip_vis();
        c.skip_type();
        c.next(); // ','
        n += 1;
    }
    n
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    while !c.at_end() {
        let mut attrs = SerdeAttrs::default();
        c.skip_attrs(&mut attrs);
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(count_tuple_fields(g.stream()));
                c.next();
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(parse_named_fields(g.stream()));
                c.next();
                s
            }
            _ => Shape::Unit,
        };
        // Separating ',' (discriminants are unsupported and would land here).
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == '=' {
                panic!("serde_derive: enum discriminants are not supported ({name})");
            }
            if p.as_char() == ',' {
                c.next();
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.into {
        format!(
            "let __proxy: {proxy} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__proxy)"
        )
    } else {
        match &item.kind {
            Kind::Unit => "::serde::Value::Null".to_string(),
            Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Kind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Arr(vec![{}])", items.join(", "))
            }
            Kind::Named(fields) => gen_named_ser(fields, "self.", ""),
            Kind::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        )),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                            };
                            arms.push_str(&format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), {inner})]),\n",
                                binds.join(", ")
                            ));
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = gen_named_ser(fields, "", "");
                            arms.push_str(&format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), {inner})]),\n",
                                binds.join(", ")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// Serialize named fields to a `Value::Obj` expression. `access` prefixes
/// each field ("self." for structs, "" for enum-variant bindings).
fn gen_named_ser(fields: &[Field], access: &str, deref: &str) -> String {
    let mut s = String::from("{ let mut __obj: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        if f.skip {
            continue;
        }
        let fname = &f.name;
        s.push_str(&format!(
            "__obj.push((\"{fname}\".to_string(), ::serde::Serialize::to_value({deref}&{access}{fname})));\n"
        ));
    }
    s.push_str("::serde::Value::Obj(__obj) }");
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.from {
        format!(
            "let __proxy: {proxy} = ::serde::Deserialize::from_value(__v)?;\n\
             Ok(::core::convert::From::from(__proxy))"
        )
    } else {
        match &item.kind {
            Kind::Unit => format!(
                "match __v {{ ::serde::Value::Null => Ok({name}), _ => Err(::serde::DeError::new(\"{name}: expected null\")) }}"
            ),
            Kind::Tuple(1) => {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Kind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                    .collect();
                format!(
                    "let __a = __v.as_arr().ok_or_else(|| ::serde::DeError::new(\"{name}: expected array\"))?;\n\
                     if __a.len() != {n} {{ return Err(::serde::DeError::new(\"{name}: wrong tuple arity\")); }}\n\
                     Ok({name}({}))",
                    items.join(", ")
                )
            }
            Kind::Named(fields) => format!(
                "let __obj = __v.as_obj().ok_or_else(|| ::serde::DeError::new(\"{name}: expected object\"))?;\n\
                 Ok({name} {{ {} }})",
                gen_named_de(fields, name)
            ),
            Kind::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut tagged_arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
                        Shape::Tuple(1) => tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{vn}\" => {{ let __a = __inner.as_arr().ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: expected array\"))?;\n\
                                 if __a.len() != {n} {{ return Err(::serde::DeError::new(\"{name}::{vn}: wrong arity\")); }}\n\
                                 Ok({name}::{vn}({})) }}\n",
                                items.join(", ")
                            ));
                        }
                        Shape::Named(fields) => tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __obj = __inner.as_obj().ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: expected object\"))?;\n\
                             Ok({name}::{vn} {{ {} }}) }}\n",
                            gen_named_de(fields, &format!("{name}::{vn}"))
                        )),
                    }
                }
                format!(
                    "match __v {{\n\
                       ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                           __other => Err(::serde::DeError::new(format!(\"{name}: unknown variant {{__other}}\"))),\n\
                       }},\n\
                       ::serde::Value::Obj(__o) if __o.len() == 1 => {{\n\
                           let (__tag, __inner) = &__o[0];\n\
                           match __tag.as_str() {{\n{tagged_arms}\
                               __other => Err(::serde::DeError::new(format!(\"{name}: unknown variant {{__other}}\"))),\n\
                           }}\n\
                       }}\n\
                       _ => Err(::serde::DeError::new(\"{name}: expected variant tag\")),\n\
                     }}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

/// Field initializers for a named-field constructor, looking each field up
/// by name in `__obj`.
fn gen_named_de(fields: &[Field], ctx: &str) -> String {
    let mut inits = Vec::new();
    for f in fields {
        let fname = &f.name;
        let init = if f.skip {
            format!("{fname}: ::core::default::Default::default()")
        } else if f.default {
            format!(
                "{fname}: match ::serde::find(__obj, \"{fname}\") {{\n\
                     Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                     None => ::core::default::Default::default(),\n\
                 }}"
            )
        } else {
            format!(
                "{fname}: match ::serde::find(__obj, \"{fname}\") {{\n\
                     Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                     None => return Err(::serde::DeError::new(\"{ctx}: missing field {fname}\")),\n\
                 }}"
            )
        };
        inits.push(init);
    }
    inits.join(",\n")
}
