//! # plan-bouquet
//!
//! A full-system Rust reproduction of **"Plan Bouquets: Query Processing
//! without Selectivity Estimation"** (Anshuman Dutt and Jayant R. Haritsa,
//! SIGMOD 2014).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`catalog`] — synthetic TPC-H / TPC-DS statistics catalogs.
//! * [`plan`] — query specifications, join graphs, physical plan trees.
//! * [`cost`] — cost models with first-class selectivity injection.
//! * [`optimizer`] — dynamic-programming optimizer, POSP generation,
//!   plan diagrams and anorexic reduction.
//! * [`executor`] — cost-unit budgeted execution simulation.
//! * [`faults`] — typed error taxonomy and deterministic seeded fault
//!   injection for chaos testing the run-time stack.
//! * [`engine`] — tuple-at-a-time volcano engine over generated data.
//! * [`bouquet`] — the paper's contribution: isocost contours, bouquet
//!   identification, run-time drivers, robustness metrics and theory bounds.
//! * [`workloads`] — the paper's benchmark error spaces (Table 2).
//!
//! ## Quickstart
//!
//! ```
//! use plan_bouquet::workloads;
//! use plan_bouquet::bouquet::{Bouquet, BouquetConfig, ExecutionOutcome};
//!
//! // The paper's 1D introductory example (Figures 1-4).
//! let w = workloads::eq_1d();
//! let bouquet = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
//!
//! // Run the bouquet at a "true" selectivity the optimizer never sees.
//! let qa = w.ess.point_at_fractions(&[0.7]);
//! let outcome = bouquet.run_basic(&qa).unwrap();
//! assert!(matches!(outcome.outcome, ExecutionOutcome::Completed { .. }));
//! // The worst-case guarantee of Theorem 3 holds at every location.
//! assert!(outcome.suboptimality(bouquet.pic_cost(&qa)) <= bouquet.mso_bound());
//! ```

pub use pb_bouquet as bouquet;
pub use pb_catalog as catalog;
pub use pb_cost as cost;
pub use pb_engine as engine;
pub use pb_executor as executor;
pub use pb_faults as faults;
pub use pb_optimizer as optimizer;
pub use pb_plan as plan;
pub use pb_workloads as workloads;
