//! Ablation: how the isocost ratio `r` and the anorexic threshold `λ` shape
//! the bouquet's guarantee and measured behaviour (Theorem 1 / Section 3.3
//! design choices), on a 2D error space.
//!
//! ```sh
//! cargo run --release --example explore_r_lambda
//! ```

use plan_bouquet::bouquet::theory;
use plan_bouquet::bouquet::{Bouquet, BouquetConfig};
use plan_bouquet::workloads;

fn main() {
    let w = workloads::h_q8a_2d(1.0);
    println!("workload {} ({} grid points)\n", w.name, w.ess.num_points());

    println!("--- sweep of the isocost common ratio r (λ = 0.2) ---");
    println!(
        "{:>5} {:>9} {:>7} {:>12} {:>13} {:>13}",
        "r", "contours", "ρ", "bound", "measured MSO", "measured ASO"
    );
    for r in [1.41, 2.0, 2.83, 4.0] {
        let cfg = BouquetConfig {
            r,
            ..Default::default()
        };
        let b = Bouquet::identify(&w, &cfg).expect("identify");
        let (mso, aso) = measure(&b);
        println!(
            "{:>5.2} {:>9} {:>7} {:>12.1} {:>13.2} {:>13.2}",
            r,
            b.stats.num_contours,
            b.rho(),
            b.mso_bound(),
            mso,
            aso
        );
    }
    println!("(the bound r²/(r−1) is minimized at r = 2 — Theorem 1)\n");

    println!("--- sweep of the anorexic threshold λ (r = 2) ---");
    println!(
        "{:>5} {:>7} {:>9} {:>12} {:>13} {:>13}",
        "λ", "ρ", "bouquet", "bound", "measured MSO", "measured ASO"
    );
    for lambda in [0.0, 0.1, 0.2, 0.5] {
        let cfg = BouquetConfig {
            lambda,
            ..Default::default()
        };
        let b = Bouquet::identify(&w, &cfg).expect("identify");
        let (mso, aso) = measure(&b);
        println!(
            "{:>5.2} {:>7} {:>9} {:>12.1} {:>13.2} {:>13.2}",
            lambda,
            b.rho(),
            b.stats.bouquet_cardinality,
            b.mso_bound(),
            mso,
            aso
        );
    }
    println!("(larger λ trades per-plan slack for smaller contour density ρ —");
    println!(" the guarantee (1+λ)·ρ·r²/(r−1) usually improves, Section 3.3)");

    println!("\nmodel-error inflation caps (Section 3.4):");
    for delta in [0.1, 0.4, 1.0] {
        println!(
            "  δ = {:.1} -> MSO may grow by at most {:.2}x",
            delta,
            theory::model_error_inflation(delta)
        );
    }
}

/// Measured (MSO, ASO) for the basic driver over the full grid.
fn measure(b: &Bouquet) -> (f64, f64) {
    let ess = &b.workload.ess;
    let mut worst = 0.0f64;
    let mut sum = 0.0f64;
    for li in 0..ess.num_points() {
        let qa = ess.point(&ess.unlinear(li));
        let run = b.run_basic(&qa).unwrap();
        assert!(run.completed());
        let so = run.suboptimality(b.pic_cost_at(li));
        worst = worst.max(so);
        sum += so;
    }
    (worst, sum / ess.num_points() as f64)
}
