//! Multi-dimensional discovery: contours, coverage and the optimized driver
//! on a 3D TPC-H error space (the paper's Section 5 machinery).
//!
//! ```sh
//! cargo run --release --example multidim_bouquet
//! ```

use plan_bouquet::bouquet::{Bouquet, BouquetConfig};
use plan_bouquet::workloads;

fn main() {
    let w = workloads::h_q5_3d();
    println!(
        "workload {}: chain({}) join graph, {} error-prone join selectivities",
        w.name,
        w.query.num_relations(),
        w.d()
    );

    let b = Bouquet::identify(&w, &BouquetConfig::default()).expect("identify");
    println!(
        "C_min {:.0}, C_max {:.0} (gradient {:.0}x), {} contours, ρ = {}",
        b.stats.cmin,
        b.stats.cmax,
        b.stats.cmax / b.stats.cmin,
        b.stats.num_contours,
        b.rho()
    );
    for c in &b.contours {
        println!(
            "  IC{:<2} budget {:>12.0}  {:>4} frontier points  plans {:?}",
            c.id,
            c.budget,
            c.points.len(),
            c.plan_set
                .iter()
                .map(|p| format!("P{p}"))
                .collect::<Vec<_>>()
        );
    }

    // Show the operator trees of the bouquet plans.
    println!("\nbouquet plans:");
    for pid in b.plan_ids() {
        println!("P{pid}:");
        for line in b.plan(pid).root.explain(&w.query, &w.catalog).lines() {
            println!("   {line}");
        }
    }

    // Discover a deep location with both drivers.
    let qa = w.ess.point_at_fractions(&[0.8, 0.75, 0.85]);
    println!(
        "\ntrue location qa = [{:.2e}, {:.2e}, {:.2e}]",
        qa[0], qa[1], qa[2]
    );
    for (label, run) in [
        ("basic", b.run_basic(&qa).unwrap()),
        ("optimized", b.run_optimized(&qa).unwrap()),
    ] {
        let opt = b.pic_cost(&qa);
        println!(
            "{label:>10}: {:>2} executions ({} partial), cost {:>12.0}, SubOpt {:.2}",
            run.trace.len(),
            run.num_partial_executions(),
            run.total_cost,
            run.suboptimality(opt)
        );
        if label == "optimized" {
            for e in &run.trace {
                let learned = e
                    .learned
                    .map(|(d, v)| format!("learned dim{d} -> {v:.2e}"))
                    .unwrap_or_default();
                println!(
                    "            IC{:<2} P{:<3} {:>12.0}/{:>12.0} {} {}",
                    e.contour,
                    e.plan,
                    e.spent,
                    e.budget,
                    if e.completed { "DONE" } else { "    " },
                    learned
                );
            }
        }
    }
    println!(
        "\nworst-case guarantee for every location in this space: {:.1}",
        b.mso_bound()
    );
}
