//! Tuple-level engine demo: manufacture an AVI estimation disaster on real
//! generated data, then watch the bouquet discover the truth while the
//! native optimizer's plan drowns (the paper's Section 6.7 experiment).
//!
//! ```sh
//! cargo run --release --example engine_demo
//! ```

use plan_bouquet::bouquet::{Bouquet, BouquetConfig};
use plan_bouquet::cost::Estimator;
use plan_bouquet::engine::{ColumnOverride, Database, Engine};
use plan_bouquet::workloads;

// The full engine-backed optimized driver lives in the pb-bench crate (it
// needs both the bouquet and the engine); this example runs the basic
// (Figure 7) loop inline, which only needs the facade API.

fn main() {
    // Small scale factor so generation + execution stay instant.
    let mut w = workloads::h_q8a_2d(0.01);
    // Stale statistics: the estimator still believes full-scale NDVs.
    w.catalog.column_stats_mut("part", "p_partkey").ndv = 200_000.0;
    w.catalog.column_stats_mut("lineitem", "l_partkey").ndv = 200_000.0;
    w.catalog.column_stats_mut("orders", "o_orderkey").ndv = 1_500_000.0;
    w.catalog.column_stats_mut("lineitem", "l_orderkey").ndv = 1_500_000.0;

    println!("generating data for {} ...", w.catalog.name);
    // Duplicated join keys: actual join selectivities far above estimates.
    let db = Database::generate(
        &w.catalog,
        7,
        &[
            ColumnOverride::EffectiveNdv {
                table: "part".into(),
                column: "p_partkey".into(),
                ndv: 200,
            },
            ColumnOverride::EffectiveNdv {
                table: "lineitem".into(),
                column: "l_partkey".into(),
                ndv: 200,
            },
            ColumnOverride::EffectiveNdv {
                table: "orders".into(),
                column: "o_orderkey".into(),
                ndv: 500,
            },
            ColumnOverride::EffectiveNdv {
                table: "lineitem".into(),
                column: "l_orderkey".into(),
                ndv: 500,
            },
        ],
    )
    .expect("generate");

    // Where does the optimizer THINK the query is, and where IS it?
    let est = Estimator::new(&w.catalog);
    let lo: Vec<f64> = w.ess.dims.iter().map(|d| d.lo).collect();
    let hi: Vec<f64> = w.ess.dims.iter().map(|d| d.hi).collect();
    let qe = est.estimate_point(&w.query, &lo, &hi);
    let mut qa = vec![0.0; 2];
    for (ji, j) in w.query.joins.iter().enumerate() {
        if let Some(d) = j.selectivity.error_dim() {
            qa[d] = db
                .actual_join_selectivity(&w.query, ji)
                .clamp(w.ess.dims[d].lo, w.ess.dims[d].hi);
        }
    }
    println!("estimated qe = [{:.2e}, {:.2e}]", qe[0], qe[1]);
    println!(
        "actual    qa = [{:.2e}, {:.2e}]  (errors {:.0}x, {:.0}x)\n",
        qa[0],
        qa[1],
        qa[0] / qe[0],
        qa[1] / qe[1]
    );

    let engine = Engine::new(&db, &w.query, &w.model.p);

    // NAT: the plan chosen at the estimate, executed on real tuples.
    let nat_plan = w.optimizer().optimize(&qe).plan;
    println!("NAT plan (chosen at qe):");
    print!("{}", nat_plan.root.explain(&w.query, &w.catalog));
    let nat = engine.execute(&nat_plan.root, f64::INFINITY);
    println!("NAT actual cost: {:.0}\n", nat.cost());

    // Oracle: the plan an all-knowing optimizer would pick.
    let oracle_plan = w
        .optimizer()
        .optimize(&plan_bouquet::cost::SelPoint(qa.clone()))
        .plan;
    let oracle = engine.execute(&oracle_plan.root, f64::INFINITY);
    println!("oracle plan (chosen at qa):");
    print!("{}", oracle_plan.root.explain(&w.query, &w.catalog));
    println!("oracle actual cost: {:.0}\n", oracle.cost());

    // Bouquet: compile once, then budget-limited engine executions.
    let b = Bouquet::identify(&w, &BouquetConfig::default()).expect("identify");
    let mut total = 0.0;
    let mut rows = 0;
    'outer: for c in &b.contours {
        for &pid in &c.plan_set {
            let out = engine.execute(&b.plan(pid).root, c.budget);
            total += out.cost();
            println!(
                "  IC{:<2} P{:<3} spent {:>10.0} / {:>10.0} {}",
                c.id,
                pid,
                out.cost(),
                c.budget,
                if out.completed() {
                    "COMPLETED"
                } else {
                    "aborted"
                }
            );
            if let plan_bouquet::engine::EngineOutcome::Completed { rows: r, .. } = out {
                rows = r;
                break 'outer;
            }
        }
    }
    println!("\nbouquet total cost: {:.0} ({} result rows)", total, rows);
    println!(
        "sub-optimality vs oracle: NAT {:.1}x, bouquet {:.1}x (guarantee {:.1})",
        nat.cost() / oracle.cost(),
        total / oracle.cost(),
        b.mso_bound()
    );
}
