//! Full robustness report for one benchmark error space: MSO / ASO /
//! MaxHarm for the native optimizer, SEER and both bouquet drivers — the
//! per-query slice of the paper's Figures 14–18.
//!
//! ```sh
//! cargo run --release --example robustness_report [WORKLOAD]
//! ```
//!
//! `WORKLOAD` defaults to `3D_DS_Q96`; try `5D_DS_Q19` for the flagship.

use plan_bouquet::bouquet::eval::{evaluate, EvalConfig};
use plan_bouquet::workloads;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "3D_DS_Q96".into());
    let Some(w) = workloads::by_name(&name) else {
        eprintln!("unknown workload {name}; available:");
        for s in workloads::specs() {
            eprintln!("  {}", s.name);
        }
        std::process::exit(1);
    };

    println!(
        "evaluating {name} over {} grid locations ...",
        w.ess.num_points()
    );
    let ev = evaluate(&w, &EvalConfig::default()).expect("evaluate");

    println!("\ncost gradient C_max/C_min: {:.0}", ev.cmax / ev.cmin);
    println!("isocost contours: {}", ev.num_contours);
    println!(
        "plan cardinalities: POSP {}, SEER {}, bouquet {}",
        ev.posp_cardinality, ev.seer_cardinality, ev.bouquet_cardinality
    );

    println!("\n              MSO          ASO");
    println!("NAT     {:>10.1}   {:>10.2}", ev.nat.mso, ev.nat.aso);
    println!("SEER    {:>10.1}   {:>10.2}", ev.seer.mso, ev.seer.aso);
    println!(
        "BOU     {:>10.1}   {:>10.2}   (guarantee {:.1})",
        ev.bou_basic.mso, ev.bou_basic.aso, ev.guarantees.bound_anorexic
    );
    if let Some(opt) = &ev.bou_opt {
        println!("BOU-opt {:>10.1}   {:>10.2}", opt.mso, opt.aso);
    }

    println!(
        "\nMaxHarm: {:.2} (harm at {:.2}% of locations)",
        ev.bou_basic_harm.max_harm,
        ev.bou_basic_harm.harm_fraction * 100.0
    );

    println!("\nrobustness-enhancement distribution (Figure 16 style):");
    for (label, frac) in &ev.distribution.buckets {
        let bar = "#".repeat((frac * 50.0).round() as usize);
        println!("  {label:<12} {:>5.1}% {bar}", frac * 100.0);
    }

    println!(
        "\nTable 1 row: ρ_posp={} bound={:.1}  →  ρ_anorexic={} bound={:.1}",
        ev.guarantees.rho_posp,
        ev.guarantees.bound_posp,
        ev.guarantees.rho_anorexic,
        ev.guarantees.bound_anorexic
    );
}
