//! The "canned query" deployment story (paper, Section 4.2): compile the
//! bouquet offline once, persist it, load it at run time, and — when the
//! database scales up — refresh it incrementally instead of rebuilding.
//!
//! ```sh
//! cargo run --release --example canned_query
//! ```

use std::time::Instant;

use plan_bouquet::bouquet::{maintenance, persist, Bouquet, BouquetConfig};
use plan_bouquet::workloads;

fn main() {
    let artifact = std::env::temp_dir().join("pb_canned_bouquet.json");

    // ---- Offline: compile and persist -------------------------------------
    let w = workloads::h_q8a_2d(1.0);
    let t0 = Instant::now();
    let b = Bouquet::identify(&w, &BouquetConfig::default()).expect("identify");
    let compile_time = t0.elapsed();
    persist::save(&b, &artifact).expect("save");
    println!(
        "offline: compiled {} in {compile_time:.2?} ({} optimizer calls), saved {} KiB",
        w.name,
        b.stats.exhaustive_optimizer_calls,
        std::fs::metadata(&artifact).unwrap().len() / 1024
    );

    // ---- Run time: load and discover --------------------------------------
    let t1 = Instant::now();
    let loaded = persist::load(&artifact).expect("load");
    println!(
        "runtime: loaded bouquet in {:.2?} (no optimizer calls)",
        t1.elapsed()
    );
    let qa = w.ess.point_at_fractions(&[0.65, 0.8]);
    let run = loaded.run_optimized(&qa).unwrap();
    println!(
        "         discovered qa in {} executions, SubOpt {:.2} (guarantee {:.1})",
        run.trace.len(),
        run.suboptimality(loaded.pic_cost(&qa)),
        loaded.mso_bound()
    );

    // ---- Later: the database quadruples ------------------------------------
    let grown = workloads::h_q8a_2d(4.0);
    let t2 = Instant::now();
    let (refreshed, report) =
        maintenance::rescale(&loaded, grown.catalog.clone(), Some(grown.clone())).expect("rescale");
    println!(
        "\nscale-up 4x: maintained in {:.2?} with {} optimizer calls \
         ({:.0}% of a rebuild), {} plans reused, {} new",
        t2.elapsed(),
        report.optimizer_calls,
        report.effort_fraction() * 100.0,
        report.reused_plans,
        report.new_plans
    );
    let qa4 = grown.ess.point_at_fractions(&[0.65, 0.8]);
    let run4 = refreshed.run_optimized(&qa4).unwrap();
    println!(
        "refreshed bouquet still discovers within bound: SubOpt {:.2} <= {:.1}",
        run4.suboptimality(refreshed.pic_cost(&qa4)),
        refreshed.mso_bound()
    );

    std::fs::remove_file(&artifact).ok();
}
