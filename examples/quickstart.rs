//! Quickstart: the paper's 1D introductory example, end to end.
//!
//! Reproduces the Figures 1–4 narrative on the EQ query (part ⋈ lineitem ⋈
//! orders with an error-prone selection on p_retailprice): identify the
//! POSP, discretize the PIC with doubling isocost steps, pick the bouquet,
//! then discover a "true" selectivity the optimizer never estimated.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use plan_bouquet::bouquet::{Bouquet, BouquetConfig};
use plan_bouquet::workloads;

fn main() {
    // The workload bundles catalog, query, error space and cost model.
    let w = workloads::eq_1d();
    println!("workload: {}  ({} error-prone dimension)", w.name, w.d());
    println!(
        "ESS: {} in [{:.4}%, {:.0}%], {} grid points\n",
        w.ess.dims[0].name,
        w.ess.dims[0].lo * 100.0,
        w.ess.dims[0].hi * 100.0,
        w.ess.num_points()
    );

    // ---- Compile time (Figure 8, left half) --------------------------------
    let bouquet = Bouquet::identify(&w, &BouquetConfig::default()).expect("identification");
    println!(
        "POSP has {} plans; {} isocost contours (r = {}); bouquet keeps {}:",
        bouquet.stats.posp_cardinality,
        bouquet.stats.num_contours,
        bouquet.config.r,
        bouquet.stats.bouquet_cardinality
    );
    for c in &bouquet.contours {
        let sel = w.ess.sel_at(0, w.ess.unlinear(c.points[0])[0]);
        println!(
            "  IC{:<2} budget {:>12.0}  PIC∩IC at {:>8.4}%  plan P{}",
            c.id,
            c.budget,
            sel * 100.0,
            c.assignment[0] + 1
        );
    }
    println!(
        "\nworst-case guarantee (Theorem 3 + anorexic λ): MSO <= {:.1}\n",
        bouquet.mso_bound()
    );

    // ---- Run time (Figure 8, right half) -----------------------------------
    // Suppose the actual selectivity is 5% — the optimizer never saw it.
    let qa = w.ess.point_at_fractions(&[f_of(&w, 0.05)]);
    println!(
        "true selectivity qa = {:.2}% (never estimated!)",
        qa[0] * 100.0
    );
    let run = bouquet.run_basic(&qa).unwrap();
    println!("discovery sequence:");
    for e in &run.trace {
        println!(
            "  IC{:<2} execute P{:<2} budget {:>10.0} -> {}",
            e.contour,
            e.plan + 1,
            e.budget,
            if e.completed {
                format!("COMPLETED ({:.0})", e.spent)
            } else {
                "budget exhausted, jettison".to_string()
            }
        );
    }
    let opt = bouquet.pic_cost(&qa);
    println!(
        "\ntotal cost {:.0} vs optimal {:.0} -> sub-optimality {:.2} (bound {:.1})",
        run.total_cost,
        opt,
        run.suboptimality(opt),
        bouquet.mso_bound()
    );

    // Repeatability: the same query instance always yields the same strategy.
    assert_eq!(run, bouquet.run_basic(&qa).unwrap());
    println!("re-running produces the identical execution strategy — repeatable.");
}

/// Fraction along the (geometric) axis corresponding to absolute sel `s`.
fn f_of(w: &plan_bouquet::bouquet::Workload, s: f64) -> f64 {
    let d = &w.ess.dims[0];
    (s / d.lo).ln() / (d.hi / d.lo).ln()
}
