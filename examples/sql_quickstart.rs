//! SQL front-end quickstart: the paper's Figure 1 query, typed as SQL, with
//! the error-prone predicate marked by `?` — from text to a guaranteed
//! discovery run in a dozen lines.
//!
//! ```sh
//! cargo run --release --example sql_quickstart
//! ```

use plan_bouquet::bouquet::{Bouquet, BouquetConfig};
use plan_bouquet::catalog::tpch;
use plan_bouquet::workloads::workload_from_sql;

fn main() {
    let catalog = tpch::catalog(1.0);

    // The paper's EQ (Figure 1). The `?` suffix marks p_retailprice's
    // selectivity as error-prone: it becomes an ESS dimension that is never
    // estimated, only discovered.
    let sql = "SELECT * FROM lineitem, orders, part \
               WHERE p_partkey = l_partkey \
               AND l_orderkey = o_orderkey \
               AND p_retailprice < 1000?";
    println!("{sql}\n");

    let w = workload_from_sql(&catalog, sql, "EQ_FROM_SQL", 4.0, 64).expect("parse");
    println!(
        "error space: {} dimension(s); dim 0 = {} in [{:.2e}, {:.0}]",
        w.d(),
        w.ess.dims[0].name,
        w.ess.dims[0].lo,
        w.ess.dims[0].hi
    );

    let b = Bouquet::identify(&w, &BouquetConfig::default()).expect("identify");
    println!(
        "bouquet: {} plans / {} contours, guarantee MSO <= {:.1}\n",
        b.stats.bouquet_cardinality,
        b.stats.num_contours,
        b.mso_bound()
    );

    // Pretend the actual selectivity is whatever you like — say 5%.
    let qa = w.ess.point_at_fractions(&[0.72]);
    println!("discovering qa = {:.2}% ...", qa[0] * 100.0);
    let run = b.run_basic(&qa).unwrap();
    for e in &run.trace {
        println!(
            "  IC{:<2} P{:<2} {:>10.0}/{:>10.0} {}",
            e.contour,
            e.plan,
            e.spent,
            e.budget,
            if e.completed {
                "COMPLETED"
            } else {
                "jettisoned"
            }
        );
    }
    println!(
        "\nSubOpt(∗,qa) = {:.2} — guaranteed <= {:.1}, with zero selectivity estimation.",
        run.suboptimality(b.pic_cost(&qa)),
        b.mso_bound()
    );
}
